// Guard-predicate-suppressed instrumentation events.
//
// The executor delivers a callback event to EVERY lane of the warp,
// including lanes whose guard predicate suppressed execution — those events
// carry LaneView::active() == false (alias guard_true()), and tools that
// count executed instructions must skip them (the paper: "instructions that
// are not executed based on a predicate register are not included").
#include <gtest/gtest.h>

#include <vector>

#include "sassim/asm/assembler.h"
#include "sassim/core/executor.h"
#include "sassim/core/instrumentation.h"

namespace nvbitfi::sim {
namespace {

struct Event {
  std::uint32_t static_index;
  int lane_id;
  bool active;
};

// Runs a 32-thread single-warp kernel with before/after callbacks on every
// instruction and returns the observed events.
struct Harness {
  std::vector<Event> before;
  std::vector<Event> after;
  LaunchStats stats;

  void Run(const std::string& body) {
    const KernelSource kernel = AssembleKernelOrDie("t", body);
    GlobalMemory mem;
    ConstantBank bank;
    CostModel cost;
    bank.Write32(0x00, 32);  // block.x
    bank.Write32(0x04, 1);
    bank.Write32(0x08, 1);
    bank.Write32(0x0c, 1);  // grid.x
    bank.Write32(0x10, 1);
    bank.Write32(0x14, 1);

    InstrumentationPlan plan;
    plan.sites.resize(kernel.instructions.size());
    for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
      plan.sites[i].before.push_back([this](const InstrEvent& e) {
        before.push_back({e.static_index, e.lane.lane_id(), e.lane.active()});
      });
      plan.sites[i].after.push_back([this](const InstrEvent& e) {
        after.push_back({e.static_index, e.lane.lane_id(), e.lane.active()});
      });
    }

    Executor::Request req;
    req.kernel = &kernel;
    req.launch.kernel_name = "t";
    req.launch.grid = {1, 1, 1};
    req.launch.block = {32, 1, 1};
    req.bank0 = &bank;
    req.global = &mem;
    req.cost = &cost;
    req.plan = &plan;
    stats = Executor::Run(req);
    ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  }
};

// P0 = (tid >= 16): the guarded IADD3 executes only on the upper half-warp.
constexpr const char* kGuardedBody =
    "  S2R R0, SR_TID.X ;\n"
    "  ISETP.GE.AND P0, PT, R0, 0x10, PT ;\n"
    "  @P0 IADD3 R1, R0, 1, RZ ;\n"
    "  EXIT ;\n";
constexpr std::uint32_t kGuardedSite = 2;

TEST(InstrumentationGuard, EventsFireForSuppressedLanesWithActiveFalse) {
  Harness h;
  h.Run(kGuardedBody);

  // The callback reaches all 32 lanes at the guarded site, before and after.
  int seen[2][32] = {};
  for (const std::vector<Event>* events : {&h.before, &h.after}) {
    const int phase = events == &h.before ? 0 : 1;
    for (const Event& e : *events) {
      if (e.static_index != kGuardedSite) continue;
      ++seen[phase][e.lane_id];
      // active() reports whether the guard let THIS lane execute.
      EXPECT_EQ(e.active, e.lane_id >= 16) << "lane " << e.lane_id;
    }
  }
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(seen[0][lane], 1) << "before, lane " << lane;
    EXPECT_EQ(seen[1][lane], 1) << "after, lane " << lane;
  }
}

TEST(InstrumentationGuard, UnguardedSitesAreActiveForEveryLane) {
  Harness h;
  h.Run(kGuardedBody);
  for (const Event& e : h.after) {
    if (e.static_index == kGuardedSite) continue;
    EXPECT_TRUE(e.active) << "site " << e.static_index << " lane " << e.lane_id;
  }
}

TEST(InstrumentationGuard, ProfilerStyleCountSkipsInactiveLanes) {
  Harness h;
  h.Run(kGuardedBody);
  // A profiler counts only executed instructions: the guarded site must
  // contribute 16, not 32 (paper rule), and the executor's own accounting
  // agrees: 3 full-warp instructions + EXIT + the half-warp IADD3.
  std::uint64_t executed = 0;
  for (const Event& e : h.after) {
    if (e.active) ++executed;
  }
  EXPECT_EQ(executed, 32u * 3u + 16u);
  EXPECT_EQ(h.stats.thread_instructions, executed);
}

}  // namespace
}  // namespace nvbitfi::sim
