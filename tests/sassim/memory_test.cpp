#include "sassim/mem/memory.h"

#include <gtest/gtest.h>

#include <vector>

namespace nvbitfi::sim {
namespace {

TEST(GlobalMemory, AllocReturnsDistinctAlignedPointers) {
  GlobalMemory mem;
  const DevPtr a = mem.Alloc(100);
  const DevPtr b = mem.Alloc(100);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(mem.live_allocations(), 2u);
  EXPECT_EQ(mem.bytes_allocated(), 200u);
}

TEST(GlobalMemory, ZeroByteAllocThrows) {
  GlobalMemory mem;
  EXPECT_THROW(mem.Alloc(0), std::logic_error);
}

TEST(GlobalMemory, CopyInOutRoundTrip) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(16);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(mem.CopyIn(p + 4, data));
  std::vector<std::uint8_t> back(8);
  EXPECT_TRUE(mem.CopyOut(p + 4, back));
  EXPECT_EQ(back, data);
}

TEST(GlobalMemory, HostCopyValidatesAllocationBounds) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(16);
  std::vector<std::uint8_t> big(17);
  EXPECT_FALSE(mem.CopyIn(p, big));          // overruns the allocation
  EXPECT_FALSE(mem.CopyIn(p + 8, big));      // overruns from an offset
  EXPECT_FALSE(mem.CopyIn(p - 8, big));      // before the allocation
  std::vector<std::uint8_t> out(17);
  EXPECT_FALSE(mem.CopyOut(p, out));
}

TEST(GlobalMemory, DeviceReadWrite) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(32);
  EXPECT_EQ(mem.Write(p, 0xDEADBEEF, 4), TrapKind::kNone);
  const MemAccessResult r = mem.Read(p, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 0xDEADBEEFu);
}

TEST(GlobalMemory, DeviceAccessWidths) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(32);
  mem.Write(p, 0x1122334455667788ull, 8);
  EXPECT_EQ(mem.Read(p, 1).value, 0x88u);
  EXPECT_EQ(mem.Read(p + 1, 1).value, 0x77u);
  EXPECT_EQ(mem.Read(p, 2).value, 0x7788u);
  EXPECT_EQ(mem.Read(p + 4, 4).value, 0x11223344u);
  EXPECT_EQ(mem.Read(p, 8).value, 0x1122334455667788ull);
}

TEST(GlobalMemory, MisalignedAccessTraps) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(32);
  EXPECT_EQ(mem.Read(p + 1, 4).trap, TrapKind::kMisalignedAddress);
  EXPECT_EQ(mem.Read(p + 2, 4).trap, TrapKind::kMisalignedAddress);
  EXPECT_EQ(mem.Read(p + 4, 8).trap, TrapKind::kMisalignedAddress);
  EXPECT_EQ(mem.Write(p + 1, 0, 2), TrapKind::kMisalignedAddress);
  EXPECT_EQ(mem.Read(p + 1, 1).trap, TrapKind::kNone);  // bytes are fine
}

TEST(GlobalMemory, OutOfArenaTraps) {
  GlobalMemory mem;
  (void)mem.Alloc(32);
  EXPECT_EQ(mem.Read(0, 4).trap, TrapKind::kIllegalAddress);        // null
  EXPECT_EQ(mem.Read(0x1000, 4).trap, TrapKind::kIllegalAddress);   // low
  EXPECT_EQ(mem.Read(GlobalMemory::kHeapBase + (1ull << 40), 4).trap,
            TrapKind::kIllegalAddress);                             // way past
  EXPECT_EQ(mem.Read(GlobalMemory::kHeapBase - 4, 4).trap,
            TrapKind::kIllegalAddress);                             // below heap
}

TEST(GlobalMemory, ArenaModelMapsBetweenAllocations) {
  // Like a real GPU heap, the space between two live allocations is mapped:
  // a device access there silently reads/writes (data corruption), it does
  // not fault.  Host copies still validate precise bounds.
  GlobalMemory mem;
  const DevPtr a = mem.Alloc(8);
  const DevPtr b = mem.Alloc(8);
  ASSERT_GT(b - a, 8u);
  const DevPtr gap = a + 64;
  ASSERT_LT(gap, b);
  EXPECT_EQ(mem.Write(gap, 7, 4), TrapKind::kNone);
  EXPECT_EQ(mem.Read(gap, 4).value, 7u);
}

TEST(GlobalMemory, FreeAndReset) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(64);
  EXPECT_TRUE(mem.Free(p));
  EXPECT_FALSE(mem.Free(p));         // double free
  EXPECT_FALSE(mem.Free(0xDEAD));    // unknown pointer
  EXPECT_EQ(mem.live_allocations(), 0u);
  mem.Reset();
  const DevPtr q = mem.Alloc(64);
  EXPECT_EQ(q, GlobalMemory::kHeapBase);
}

TEST(GlobalMemory, AtomicRmw) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(16);
  mem.Write(p, 10, 4);
  const MemAccessResult old = mem.AtomicRmw(p, 5, /*Add*/ 0, 4);
  EXPECT_EQ(old.value, 10u);
  EXPECT_EQ(mem.Read(p, 4).value, 15u);
}

TEST(ApplyAtomicOp, AllOperations) {
  EXPECT_EQ(ApplyAtomicOp(10, 5, 0, 4), 15u);                 // add
  EXPECT_EQ(ApplyAtomicOp(10, 5, 1, 4), 5u);                  // min
  EXPECT_EQ(ApplyAtomicOp(10, 5, 2, 4), 10u);                 // max
  EXPECT_EQ(ApplyAtomicOp(10, 5, 3, 4), 5u);                  // exch
  EXPECT_EQ(ApplyAtomicOp(0xF0, 0x3C, 5, 4), 0x30u);          // and
  EXPECT_EQ(ApplyAtomicOp(0xF0, 0x3C, 6, 4), 0xFCu);          // or
  EXPECT_EQ(ApplyAtomicOp(0xF0, 0x3C, 7, 4), 0xCCu);          // xor
  // Width masking: a 1-byte add wraps at 256.
  EXPECT_EQ(ApplyAtomicOp(0xFF, 1, 0, 1), 0u);
}

TEST(FlatMemory, BasicReadWrite) {
  FlatMemory mem(64);
  EXPECT_EQ(mem.Write(8, 0xCAFE, 4), TrapKind::kNone);
  EXPECT_EQ(mem.Read(8, 4).value, 0xCAFEu);
}

TEST(FlatMemory, MisalignedTraps) {
  FlatMemory mem(64);
  EXPECT_EQ(mem.Read(2, 4).trap, TrapKind::kMisalignedAddress);
  EXPECT_EQ(mem.Write(6, 0, 4), TrapKind::kMisalignedAddress);
}

TEST(FlatMemory, WindowSemantics) {
  // Accesses beyond the allocation but inside the hardware window read zeros
  // and drop writes; accesses outside the window trap.
  FlatMemory mem(64, /*window=*/4096);
  EXPECT_EQ(mem.Write(128, 0x1234, 4), TrapKind::kNone);   // dropped
  EXPECT_EQ(mem.Read(128, 4).value, 0u);                   // zeros
  EXPECT_EQ(mem.Read(4096, 4).trap, TrapKind::kIllegalAddress);
  EXPECT_EQ(mem.Write(4096, 0, 4), TrapKind::kIllegalAddress);
}

TEST(FlatMemory, WindowDefaultsToSize) {
  FlatMemory mem(64);
  EXPECT_EQ(mem.window(), 64u);
  EXPECT_EQ(mem.Read(64, 4).trap, TrapKind::kIllegalAddress);
}

constexpr std::size_t kPageBytes = GlobalMemory::kPageBytes;

TEST(GlobalMemorySnapshot, RestoreRoundTripsContentAndAllocator) {
  GlobalMemory mem;
  const DevPtr a = mem.Alloc(64);
  EXPECT_EQ(mem.Write(a, 0x11111111, 4), TrapKind::kNone);
  const GlobalMemory::Snapshot snap = mem.TakeSnapshot();

  // Mutate everything the snapshot covers: contents, allocations, arena size.
  EXPECT_EQ(mem.Write(a, 0x22222222, 4), TrapKind::kNone);
  const DevPtr b = mem.Alloc(8192);
  EXPECT_EQ(mem.Write(b, 0x33333333, 4), TrapKind::kNone);
  EXPECT_EQ(mem.live_allocations(), 2u);

  mem.RestoreSnapshot(snap);
  EXPECT_EQ(mem.Read(a, 4).value, 0x11111111u);
  EXPECT_EQ(mem.live_allocations(), 1u);
  EXPECT_EQ(mem.bytes_allocated(), 64u);
  // The bump allocator rewound too: the next allocation lands where `b` did.
  EXPECT_EQ(mem.Alloc(8192), b);
}

TEST(GlobalMemorySnapshot, MutationAfterSnapshotDoesNotLeakIntoIt) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(16);
  EXPECT_EQ(mem.Write(p, 0xAAAAAAAA, 4), TrapKind::kNone);
  const GlobalMemory::Snapshot snap = mem.TakeSnapshot();

  // Every mutation path: device store, host upload, and a growing Alloc.
  EXPECT_EQ(mem.Write(p, 0xBBBBBBBB, 4), TrapKind::kNone);
  const std::vector<std::uint8_t> data(8, 0xCC);
  EXPECT_TRUE(mem.CopyIn(p + 8, data));
  mem.Alloc(4096);

  mem.RestoreSnapshot(snap);
  EXPECT_EQ(mem.Read(p, 4).value, 0xAAAAAAAAu);
  EXPECT_EQ(mem.Read(p + 8, 4).value, 0u);
}

TEST(GlobalMemorySnapshot, SharesUntouchedPagesWithPreviousSnapshot) {
  GlobalMemory mem;
  // Three full pages of arena.
  const DevPtr p = mem.Alloc(3 * kPageBytes);
  const GlobalMemory::Snapshot first = mem.TakeSnapshot();
  ASSERT_EQ(first.pages.size(), 3u);

  // Touch only the middle page; an incremental snapshot must share the
  // others by pointer (the copy-on-write property the checkpoint stream's
  // O(pages touched) cost claim rests on).
  EXPECT_EQ(mem.Write(p + kPageBytes, 0x5A5A5A5A, 4), TrapKind::kNone);
  const GlobalMemory::Snapshot second = mem.TakeSnapshot(&first);
  ASSERT_EQ(second.pages.size(), 3u);
  EXPECT_EQ(second.pages[0].get(), first.pages[0].get());
  EXPECT_NE(second.pages[1].get(), first.pages[1].get());
  EXPECT_EQ(second.pages[2].get(), first.pages[2].get());

  // An untouched arena shares everything.
  const GlobalMemory::Snapshot third = mem.TakeSnapshot(&second);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(third.pages[i].get(), second.pages[i].get());
  }
}

TEST(GlobalMemorySnapshot, RestorePreservesSharingWithLaterSnapshots) {
  GlobalMemory mem;
  const DevPtr p = mem.Alloc(2 * kPageBytes);
  EXPECT_EQ(mem.Write(p, 0x11, 4), TrapKind::kNone);
  const GlobalMemory::Snapshot snap = mem.TakeSnapshot();

  EXPECT_EQ(mem.Write(p, 0x22, 4), TrapKind::kNone);
  mem.RestoreSnapshot(snap);

  // Restoring brought back the page stamps, so a snapshot taken now is
  // byte- and structure-identical to the restored one.
  const GlobalMemory::Snapshot again = mem.TakeSnapshot(&snap);
  ASSERT_EQ(again.pages.size(), snap.pages.size());
  for (std::size_t i = 0; i < snap.pages.size(); ++i) {
    EXPECT_EQ(again.pages[i].get(), snap.pages[i].get());
  }
}

TEST(GlobalMemorySnapshot, GrowthAfterSnapshotInvalidatesTailPage) {
  GlobalMemory mem;
  // A partial final page: growth must not alias the old (shorter) page.
  mem.Alloc(kPageBytes + 100);
  const GlobalMemory::Snapshot first = mem.TakeSnapshot();
  ASSERT_EQ(first.pages.size(), 2u);
  EXPECT_EQ(first.pages[1]->size(), 100u);

  mem.Alloc(kPageBytes);
  const GlobalMemory::Snapshot second = mem.TakeSnapshot(&first);
  ASSERT_EQ(second.pages.size(), 3u);
  EXPECT_EQ(second.pages[0].get(), first.pages[0].get());
  // Page 1 grew from a 100-byte tail to a full page: same stamp-era data on
  // its prefix, but the old shared page must not be reused at a new length.
  EXPECT_NE(second.pages[1].get(), first.pages[1].get());
  EXPECT_EQ(second.pages[1]->size(), kPageBytes);
}

TEST(ConstantBank, ReadWriteAndGrowth) {
  ConstantBank bank;
  bank.Write32(0x160, 0x12345678);
  bank.Write64(0x168, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(bank.Read32(0x160), 0x12345678u);
  EXPECT_EQ(bank.Read64(0x168), 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(bank.Read32(0x168), 0xEEFF0011u);  // low half
}

TEST(ConstantBank, OutOfBoundsReadsZero) {
  ConstantBank bank;
  bank.Write32(0, 7);
  EXPECT_EQ(bank.Read32(0x1000), 0u);
  EXPECT_EQ(bank.Read64(0x1000), 0u);
}

}  // namespace
}  // namespace nvbitfi::sim
