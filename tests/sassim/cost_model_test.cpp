#include "sassim/core/cost_model.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"

namespace nvbitfi::sim {
namespace {

TEST(CostModel, BaseCostFollowsOpcodeTable) {
  CostModel cost;
  const KernelSource kernel = AssembleKernelOrDie("t",
                                                  "  FADD R1, R2, R3 ;\n"
                                                  "  LDG.E.32 R4, [R6] ;\n"
                                                  "  DADD R8, R10, R12 ;\n"
                                                  "  EXIT ;\n");
  EXPECT_EQ(cost.BaseCost(kernel.instructions[0]),
            GetOpcodeInfo(Opcode::kFADD).base_cost_cycles);
  EXPECT_EQ(cost.BaseCost(kernel.instructions[1]),
            GetOpcodeInfo(Opcode::kLDG).base_cost_cycles);
  // Memory is costlier than ALU; FP64 costlier than FP32.
  EXPECT_GT(cost.BaseCost(kernel.instructions[1]), cost.BaseCost(kernel.instructions[0]));
  EXPECT_GT(cost.BaseCost(kernel.instructions[2]), cost.BaseCost(kernel.instructions[0]));
}

TEST(CostModel, SpillPredicate) {
  CostModel cost;
  // Below / at / above the register budget.
  EXPECT_FALSE(cost.Spills(32, 32));
  EXPECT_FALSE(cost.Spills(cost.spill_reg_threshold, 0));
  EXPECT_TRUE(cost.Spills(cost.spill_reg_threshold, 1));
  EXPECT_TRUE(cost.Spills(80, 32));  // 350.md under the profiler
  EXPECT_FALSE(cost.Spills(80, 8));  // 350.md under the injector
}

TEST(CostModel, DefaultsAreSane) {
  const CostModel cost;
  EXPECT_GT(cost.spill_multiplier, 1u);
  EXPECT_GT(cost.spill_callback_multiplier, 1u);
  EXPECT_GT(cost.jit_base_cycles, 0u);
  EXPECT_GT(cost.launch_base_cycles, 0u);
  EXPECT_GT(cost.tool_intercept_cycles, 0u);
}

}  // namespace
}  // namespace nvbitfi::sim
