// Disassembler property over the entire workload suite: every kernel of
// every loaded module must disassemble to text that re-assembles to the
// identical binary encoding.
#include <gtest/gtest.h>

#include <cctype>

#include "sassim/asm/assembler.h"
#include "sassim/asm/disassembler.h"
#include "sassim/isa/encoding.h"
#include "workloads/workloads.h"

namespace nvbitfi::sim {
namespace {

class DisassemblerSuite
    : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(DisassemblerSuite, EveryKernelRoundTrips) {
  const workloads::WorkloadEntry& entry = GetParam();
  Context ctx;
  entry.program->Run(ctx);  // loads the program's modules

  std::size_t kernels_checked = 0;
  for (const auto& module : ctx.modules()) {
    for (const auto& fn : module->functions()) {
      const KernelSource& kernel = fn->source();
      const std::string text = Disassemble(kernel);
      const AssemblyResult back = Assemble(text);
      ASSERT_TRUE(back.ok) << kernel.name << ": " << back.error << "\n" << text;
      ASSERT_EQ(back.kernels.size(), 1u);
      ASSERT_EQ(back.kernels[0].instructions.size(), kernel.instructions.size())
          << kernel.name;
      for (std::size_t i = 0; i < kernel.instructions.size(); ++i) {
        ASSERT_EQ(Encode(back.kernels[0].instructions[i]),
                  Encode(kernel.instructions[i]))
            << kernel.name << " instruction " << i << ": "
            << kernel.instructions[i].ToString();
      }
      ++kernels_checked;
    }
  }
  EXPECT_EQ(kernels_checked,
            static_cast<std::size_t>(entry.table4_counts.static_kernels));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, DisassemblerSuite,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::sim
