#include "sassim/asm/assembler.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace nvbitfi::sim {
namespace {

AssemblyResult Asm(const std::string& body) {
  return Assemble(".kernel t\n" + body + "\n.endkernel\n");
}

Instruction One(const std::string& line) {
  const AssemblyResult r = Asm(line);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kernels.size(), 1u);
  EXPECT_EQ(r.kernels[0].instructions.size(), 1u);
  return r.kernels[0].instructions[0];
}

TEST(Assembler, KernelAttributes) {
  const AssemblyResult r = Assemble(
      ".kernel foo regs=48 shared=1024\n"
      "  EXIT ;\n"
      ".endkernel\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kernels[0].name, "foo");
  EXPECT_EQ(r.kernels[0].register_count, 48u);
  EXPECT_EQ(r.kernels[0].shared_bytes, 1024u);
}

TEST(Assembler, MultipleKernels) {
  const AssemblyResult r = Assemble(
      ".kernel a\n  EXIT ;\n.endkernel\n"
      ".kernel b\n  NOP ;\n  EXIT ;\n.endkernel\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.kernels.size(), 2u);
  EXPECT_EQ(r.kernels[0].instructions.size(), 1u);
  EXPECT_EQ(r.kernels[1].instructions.size(), 2u);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AssemblyResult r = Assemble(
      "// leading comment\n"
      ".kernel t\n"
      "\n"
      "  NOP ;   // trailing comment\n"
      "  # hash comment line\n"
      "  EXIT ;\n"
      ".endkernel\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kernels[0].instructions.size(), 2u);
}

TEST(Assembler, BasicArithmetic) {
  const Instruction i = One("  FADD R4, R2, R3 ;");
  EXPECT_EQ(i.opcode, Opcode::kFADD);
  EXPECT_EQ(i.dest_gpr, 4);
  EXPECT_EQ(i.num_src, 2);
  EXPECT_EQ(i.src[0].reg, 2);
  EXPECT_EQ(i.src[1].reg, 3);
}

TEST(Assembler, GuardPredicates) {
  const Instruction pos = One("  @P2 EXIT ;");
  EXPECT_EQ(pos.guard_pred, 2);
  EXPECT_FALSE(pos.guard_negate);

  const Instruction neg = One("  @!P5 NOP ;");
  EXPECT_EQ(neg.guard_pred, 5);
  EXPECT_TRUE(neg.guard_negate);
}

TEST(Assembler, RegisterZeroAndPT) {
  const Instruction i = One("  IADD3 R0, RZ, 0x1, RZ ;");
  EXPECT_EQ(i.src[0].reg, kRZ);
  const Instruction p = One("  ISETP.LT.AND P0, PT, R1, R2, PT ;");
  EXPECT_EQ(p.dest_pred, 0);
  EXPECT_EQ(p.dest_pred2, kPT);
  EXPECT_EQ(p.src[2].kind, Operand::Kind::kPred);
  EXPECT_EQ(p.src[2].reg, kPT);
}

TEST(Assembler, OperandModifiers) {
  const Instruction i = One("  FADD R4, -R2, |R3| ;");
  EXPECT_TRUE(i.src[0].negate);
  EXPECT_TRUE(i.src[1].absolute);
  const Instruction j = One("  LOP3 R4, ~R2, R3, RZ, 0xc0 ;");
  EXPECT_TRUE(j.src[0].invert);
}

TEST(Assembler, ImmediateForms) {
  EXPECT_EQ(One("  MOV32I R1, 0x1F ;").src[0].imm, 0x1Fu);
  EXPECT_EQ(One("  MOV32I R1, 42 ;").src[0].imm, 42u);
  EXPECT_EQ(One("  MOV32I R1, -1 ;").src[0].imm, 0xFFFFFFFFu);
  EXPECT_EQ(One("  MOV32I R1, 1.5f ;").src[0].imm, FloatToBits(1.5f));
  EXPECT_EQ(One("  MOV32I R1, -0.5f ;").src[0].imm, FloatToBits(-0.5f));
  // Hex that ends in 'f' must parse as hex, not as a float suffix.
  EXPECT_EQ(One("  MOV32I R1, 0xf ;").src[0].imm, 0xFu);
}

TEST(Assembler, ConstantBankOperands) {
  const Instruction i = One("  MOV R2, c[0][0x160] ;");
  EXPECT_EQ(i.src[0].kind, Operand::Kind::kConst);
  EXPECT_EQ(i.src[0].const_bank, 0);
  EXPECT_EQ(i.src[0].const_offset, 0x160u);
  const Instruction j = One("  MOV R2, c[0x3][8] ;");
  EXPECT_EQ(j.src[0].const_bank, 3);
  EXPECT_EQ(j.src[0].const_offset, 8u);
}

TEST(Assembler, MemoryOperands) {
  const Instruction plain = One("  LDG.E.32 R8, [R6] ;");
  EXPECT_EQ(plain.src[0].kind, Operand::Kind::kMem);
  EXPECT_EQ(plain.src[0].mem_base, 6);
  EXPECT_EQ(plain.src[0].mem_offset, 0);

  EXPECT_EQ(One("  LDG.E.32 R8, [R6+0x10] ;").src[0].mem_offset, 0x10);
  EXPECT_EQ(One("  LDG.E.32 R8, [R6+-4] ;").src[0].mem_offset, -4);
  EXPECT_EQ(One("  LDG.E.32 R8, [R6-8] ;").src[0].mem_offset, -8);
}

TEST(Assembler, MemoryWidthModifiers) {
  EXPECT_EQ(One("  LDG.E.U8 R8, [R6] ;").mods.width, MemWidth::k8);
  EXPECT_FALSE(One("  LDG.E.U8 R8, [R6] ;").mods.sign_extend);
  EXPECT_TRUE(One("  LDG.E.S8 R8, [R6] ;").mods.sign_extend);
  EXPECT_EQ(One("  LDG.E.S16 R8, [R6] ;").mods.width, MemWidth::k16);
  EXPECT_EQ(One("  LDG.E.64 R8, [R6] ;").mods.width, MemWidth::k64);
  EXPECT_EQ(One("  LDG.E.128 R8, [R6] ;").mods.width, MemWidth::k128);
  EXPECT_EQ(One("  STG.E.64 [R6], R8 ;").mods.width, MemWidth::k64);
}

TEST(Assembler, SetpModifiers) {
  const Instruction i = One("  ISETP.GE.U32.OR P1, P2, R3, R4, !P5 ;");
  EXPECT_EQ(i.mods.cmp, CmpOp::kGE);
  EXPECT_EQ(i.mods.bool_op, BoolOp::kOr);
  EXPECT_FALSE(i.mods.src_signed);
  EXPECT_EQ(i.dest_pred, 1);
  EXPECT_EQ(i.dest_pred2, 2);
  EXPECT_TRUE(i.src[2].negate);
}

TEST(Assembler, MufuFunctions) {
  EXPECT_EQ(One("  MUFU.RCP R1, R2 ;").mods.mufu, MufuFunc::kRcp);
  EXPECT_EQ(One("  MUFU.RSQ R1, R2 ;").mods.mufu, MufuFunc::kRsq);
  EXPECT_EQ(One("  MUFU.SQRT R1, R2 ;").mods.mufu, MufuFunc::kSqrt);
  EXPECT_EQ(One("  MUFU.LG2 R1, R2 ;").mods.mufu, MufuFunc::kLg2);
  EXPECT_EQ(One("  MUFU.EX2 R1, R2 ;").mods.mufu, MufuFunc::kEx2);
  EXPECT_EQ(One("  MUFU.SIN R1, R2 ;").mods.mufu, MufuFunc::kSin);
  EXPECT_EQ(One("  MUFU.COS R1, R2 ;").mods.mufu, MufuFunc::kCos);
}

TEST(Assembler, ImadWide) {
  const Instruction i = One("  IMAD.WIDE R6, R0, 0x4, R4 ;");
  EXPECT_TRUE(i.mods.wide_dst);
  EXPECT_EQ(i.dest_gpr, 6);
}

TEST(Assembler, ShiftDirection) {
  EXPECT_EQ(One("  SHF.L R1, R2, 0x4, R3 ;").mods.shift_dir, ShiftDir::kLeft);
  EXPECT_EQ(One("  SHF.R.U32 R1, R2, 0x4, R3 ;").mods.shift_dir, ShiftDir::kRight);
}

TEST(Assembler, SpecialRegisters) {
  const Instruction i = One("  S2R R0, SR_CTAID.X ;");
  EXPECT_EQ(i.mods.sreg, SpecialReg::kCtaIdX);
  EXPECT_EQ(One("  S2R R0, SR_LANEID ;").mods.sreg, SpecialReg::kLaneId);
  EXPECT_EQ(One("  S2R R0, SR_SMID ;").mods.sreg, SpecialReg::kSmId);
}

TEST(Assembler, AtomicModifiers) {
  EXPECT_EQ(One("  ATOMG.ADD R1, [R2], R3 ;").mods.atomic, AtomicOp::kAdd);
  EXPECT_EQ(One("  ATOMG.MAX R1, [R2], R3 ;").mods.atomic, AtomicOp::kMax);
  // AND is an atomic op here, not a SETP combine.
  EXPECT_EQ(One("  ATOMS.AND R1, [R2], R3 ;").mods.atomic, AtomicOp::kAnd);
}

TEST(Assembler, VoteAndShflModes) {
  EXPECT_EQ(One("  VOTE.ALL R1, P0, P1 ;").mods.vote, VoteMode::kAll);
  EXPECT_EQ(One("  VOTE.ANY R1, P0, P1 ;").mods.vote, VoteMode::kAny);
  EXPECT_EQ(One("  SHFL.DOWN R1, R2, 0x1 ;").mods.shfl, ShflMode::kDown);
  EXPECT_EQ(One("  SHFL.BFLY R1, R2, 0x1 ;").mods.shfl, ShflMode::kBfly);
}

TEST(Assembler, LabelsResolveForwardsAndBackwards) {
  const AssemblyResult r = Asm(
      "top:\n"
      "  IADD3 R0, R0, 1, RZ ;\n"
      "  @P0 BRA top ;\n"
      "  @P1 BRA bottom ;\n"
      "  NOP ;\n"
      "bottom:\n"
      "  EXIT ;\n");
  ASSERT_TRUE(r.ok) << r.error;
  const auto& body = r.kernels[0].instructions;
  EXPECT_EQ(body[1].src[0].imm, 0u);  // top
  EXPECT_EQ(body[2].src[0].imm, 4u);  // bottom
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const AssemblyResult r = Asm(
      "loop: IADD3 R0, R0, 1, RZ ;\n"
      "  @P0 BRA loop ;\n"
      "  EXIT ;\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kernels[0].instructions[1].src[0].imm, 0u);
}

// ---- error reporting ----

TEST(Assembler, ErrorUnknownOpcode) {
  const AssemblyResult r = Asm("  FROB R1, R2 ;");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown opcode"), std::string::npos);
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(Assembler, ErrorUnknownModifier) {
  const AssemblyResult r = Asm("  FADD.BOGUS R1, R2, R3 ;");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown modifier"), std::string::npos);
}

TEST(Assembler, ErrorBadOperand) {
  EXPECT_FALSE(Asm("  MOV R1, R299 ;").ok);
  EXPECT_FALSE(Asm("  MOV R1, P9 ;").ok);
  EXPECT_FALSE(Asm("  MOV R1, c[0][ ;").ok);
  EXPECT_FALSE(Asm("  LDG.E.32 R1, [Q2] ;").ok);
}

TEST(Assembler, ErrorUndefinedLabel) {
  const AssemblyResult r = Asm("  BRA nowhere ;\n  EXIT ;");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("undefined label"), std::string::npos);
}

TEST(Assembler, ErrorDuplicateLabel) {
  const AssemblyResult r = Asm("x:\n  NOP ;\nx:\n  EXIT ;");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate label"), std::string::npos);
}

TEST(Assembler, ErrorMissingEndKernel) {
  const AssemblyResult r = Assemble(".kernel t\n  EXIT ;\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(".endkernel"), std::string::npos);
}

TEST(Assembler, ErrorNestedKernel) {
  const AssemblyResult r = Assemble(".kernel a\n.kernel b\n.endkernel\n");
  EXPECT_FALSE(r.ok);
}

TEST(Assembler, ErrorInstructionOutsideKernel) {
  EXPECT_FALSE(Assemble("  NOP ;\n").ok);
}

TEST(Assembler, ErrorBadKernelAttributes) {
  EXPECT_FALSE(Assemble(".kernel t regs=0\n.endkernel\n").ok);
  EXPECT_FALSE(Assemble(".kernel t regs=999\n.endkernel\n").ok);
  EXPECT_FALSE(Assemble(".kernel t bogus=1\n.endkernel\n").ok);
  EXPECT_FALSE(Assemble(".kernel t regs=abc\n.endkernel\n").ok);
}

TEST(Assembler, ErrorTooManyOperands) {
  EXPECT_FALSE(Asm("  IADD3 R1, R2, R3, R4, R5, R6 ;").ok);
}

TEST(Assembler, SemicolonIsOptional) {
  const AssemblyResult r = Asm("  NOP\n  EXIT");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kernels[0].instructions.size(), 2u);
}

}  // namespace
}  // namespace nvbitfi::sim
