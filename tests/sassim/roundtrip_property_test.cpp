// Full-chain round-trip property over every built-in workload kernel:
//
//   encode -> decode -> disassemble -> assemble -> encode
//
// must reproduce the original byte encoding exactly, and the assembly text
// must preserve the kernel header (register count, shared bytes).  The
// disassembler_workloads_test covers the text half; this closes the loop
// through the binary codec the module loader uses.
#include <gtest/gtest.h>

#include <cctype>

#include "sassim/asm/assembler.h"
#include "sassim/asm/disassembler.h"
#include "sassim/isa/encoding.h"
#include "workloads/workloads.h"

namespace nvbitfi::sim {
namespace {

class RoundTripSuite : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(RoundTripSuite, EncodeDecodeDisassembleAssembleIsIdentity) {
  const workloads::WorkloadEntry& entry = GetParam();
  Context ctx;
  entry.program->Run(ctx);  // loads the program's modules

  std::size_t kernels_checked = 0;
  for (const auto& module : ctx.modules()) {
    for (const auto& fn : module->functions()) {
      const KernelSource& kernel = fn->source();
      SCOPED_TRACE(kernel.name);

      const std::vector<EncodedInstruction> bytes =
          EncodeProgram(kernel.instructions);
      ASSERT_EQ(bytes.size(), kernel.instructions.size());

      const ProgramDecodeResult decoded = DecodeProgram(bytes);
      ASSERT_TRUE(decoded.ok) << decoded.error;
      ASSERT_EQ(decoded.instructions.size(), kernel.instructions.size());

      KernelSource reconstructed = kernel;
      reconstructed.instructions = decoded.instructions;
      const AssemblyResult back = Assemble(Disassemble(reconstructed));
      ASSERT_TRUE(back.ok) << back.error;
      ASSERT_EQ(back.kernels.size(), 1u);
      const KernelSource& final_kernel = back.kernels[0];
      EXPECT_EQ(final_kernel.name, kernel.name);
      EXPECT_EQ(final_kernel.register_count, kernel.register_count);
      EXPECT_EQ(final_kernel.shared_bytes, kernel.shared_bytes);

      const std::vector<EncodedInstruction> reencoded =
          EncodeProgram(final_kernel.instructions);
      ASSERT_EQ(reencoded.size(), bytes.size());
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(reencoded[i], bytes[i])
            << "instruction " << i << ": " << kernel.instructions[i].ToString();
      }
      ++kernels_checked;
    }
  }
  EXPECT_EQ(kernels_checked,
            static_cast<std::size_t>(entry.table4_counts.static_kernels));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, RoundTripSuite,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::sim
