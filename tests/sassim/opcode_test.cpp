#include "sassim/isa/opcode.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace nvbitfi::sim {
namespace {

TEST(Opcode, VoltaCount) {
  // Table III: "the Volta ISA contains 171 opcodes".
  EXPECT_EQ(kOpcodeCount, 171);
}

TEST(Opcode, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int i = 0; i < kOpcodeCount; ++i) {
    const std::string name(OpcodeName(static_cast<Opcode>(i)));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate opcode name " << name;
  }
}

TEST(Opcode, NameRoundTrip) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const auto back = OpcodeFromName(OpcodeName(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
}

TEST(Opcode, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(OpcodeFromName("NOT_AN_OPCODE").has_value());
  EXPECT_FALSE(OpcodeFromName("").has_value());
  EXPECT_FALSE(OpcodeFromName("fadd").has_value());  // case-sensitive
}

TEST(Opcode, WellKnownOpcodes) {
  EXPECT_EQ(ClassOf(Opcode::kFADD), OpClass::kFp32);
  EXPECT_EQ(ClassOf(Opcode::kDADD), OpClass::kFp64);
  EXPECT_EQ(ClassOf(Opcode::kIMAD), OpClass::kInt);
  EXPECT_EQ(ClassOf(Opcode::kLDG), OpClass::kLoad);
  EXPECT_EQ(ClassOf(Opcode::kSTG), OpClass::kStore);
  EXPECT_EQ(ClassOf(Opcode::kBRA), OpClass::kControl);
  EXPECT_EQ(ClassOf(Opcode::kATOMG), OpClass::kAtomic);
}

TEST(Opcode, DestKinds) {
  EXPECT_EQ(DestKindOf(Opcode::kFADD), DestKind::kGpr);
  EXPECT_EQ(DestKindOf(Opcode::kDADD), DestKind::kGprPair);
  EXPECT_EQ(DestKindOf(Opcode::kFSETP), DestKind::kPred);
  EXPECT_EQ(DestKindOf(Opcode::kSTG), DestKind::kNone);
  EXPECT_EQ(DestKindOf(Opcode::kEXIT), DestKind::kNone);
  EXPECT_EQ(DestKindOf(Opcode::kVOTE), DestKind::kGprPred);
}

TEST(Opcode, LoadsAreMemoryReadsWithDests) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (ClassOf(op) == OpClass::kLoad) {
      EXPECT_TRUE(IsMemoryRead(op)) << OpcodeName(op);
      EXPECT_TRUE(HasDest(op)) << OpcodeName(op);
    }
  }
}

TEST(Opcode, StoresHaveNoDest) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (ClassOf(op) == OpClass::kStore) {
      EXPECT_FALSE(HasDest(op)) << OpcodeName(op);
    }
  }
}

TEST(Opcode, ControlFlowHasNoDest) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (ClassOf(op) == OpClass::kControl) {
      EXPECT_FALSE(HasDest(op)) << OpcodeName(op);
    }
  }
}

TEST(Opcode, PredWritersAreConsistent) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (WritesPredOnly(op)) {
      EXPECT_TRUE(HasDest(op)) << OpcodeName(op);
      EXPECT_FALSE(WritesGpr(op)) << OpcodeName(op);
    }
  }
}

TEST(Opcode, GprWritersAreConsistent) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (WritesGpr(op)) {
      EXPECT_TRUE(HasDest(op)) << OpcodeName(op);
      EXPECT_FALSE(WritesPredOnly(op)) << OpcodeName(op);
    }
  }
}

TEST(Opcode, AllCostsPositive) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    EXPECT_GT(GetOpcodeInfo(static_cast<Opcode>(i)).base_cost_cycles, 0u);
  }
}

TEST(Opcode, Fp32AndFp64Disjoint) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    EXPECT_FALSE(IsFp32Arith(op) && IsFp64Arith(op)) << OpcodeName(op);
  }
}

TEST(Opcode, InvalidOpcodeLookupThrows) {
  EXPECT_THROW(GetOpcodeInfo(Opcode::kCount), std::logic_error);
}

}  // namespace
}  // namespace nvbitfi::sim
