#include "sassim/core/executor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.h"
#include "common/strings.h"
#include "sassim/asm/assembler.h"

namespace nvbitfi::sim {
namespace {

// Harness: runs `body` (which must leave its 32-bit result in R3, or its
// 64-bit result in R3:R4) with a single thread and returns the stored value.
class ScalarRunner {
 public:
  std::uint32_t Run32(const std::string& body) {
    RunBody(body +
            "  LDC.64 R8, c[0][0x160] ;\n"
            "  STG.E.32 [R8], R3 ;\n"
            "  EXIT ;\n");
    const MemAccessResult r = mem_.Read(out_, 4);
    EXPECT_TRUE(r.ok());
    return static_cast<std::uint32_t>(r.value);
  }

  std::uint64_t Run64(const std::string& body) {
    RunBody(body +
            "  LDC.64 R8, c[0][0x160] ;\n"
            "  STG.E.64 [R8], R3 ;\n"
            "  EXIT ;\n");
    const MemAccessResult r = mem_.Read(out_, 8);
    EXPECT_TRUE(r.ok());
    return r.value;
  }

  float RunF32(const std::string& body) { return BitsToFloat(Run32(body)); }
  double RunF64(const std::string& body) { return BitsToDouble(Run64(body)); }

  // Runs a raw kernel body (no implicit store); returns the stats.
  LaunchStats RunRaw(const std::string& body, Dim3 grid = {1, 1, 1},
                     Dim3 block = {1, 1, 1}, std::uint64_t watchdog = 0,
                     std::uint32_t shared_bytes = 0) {
    KernelSource kernel = AssembleKernelOrDie("t", body);
    kernel.shared_bytes = shared_bytes;
    // Mirror the driver's launch-configuration constants.
    bank_.Write32(0x00, block.x);
    bank_.Write32(0x04, block.y);
    bank_.Write32(0x08, block.z);
    bank_.Write32(0x0c, grid.x);
    bank_.Write32(0x10, grid.y);
    bank_.Write32(0x14, grid.z);
    Executor::Request req;
    req.kernel = &kernel;
    req.launch.kernel_name = "t";
    req.launch.grid = grid;
    req.launch.block = block;
    req.bank0 = &bank_;
    req.global = &mem_;
    req.cost = &cost_;
    req.max_thread_instructions = watchdog;
    return Executor::Run(req);
  }

  GlobalMemory& mem() { return mem_; }
  ConstantBank& bank() { return bank_; }
  DevPtr out() const { return out_; }

 private:
  void RunBody(const std::string& body) {
    out_ = mem_.Alloc(256);
    bank_.Write64(0x160, out_);
    const LaunchStats stats = RunRaw(body);
    ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  }

  GlobalMemory mem_;
  ConstantBank bank_;
  CostModel cost_;
  DevPtr out_ = 0;
};

std::string Imm(float v) { return Format("0x%08x", FloatToBits(v)); }

// ---- FP32 arithmetic ----

TEST(Executor, Fadd) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  MOV32I R1, " + Imm(1.25f) + " ;\n" +
                           "  FADD R3, R1, " + Imm(2.5f) + " ;\n"),
                  3.75f);
}

TEST(Executor, FaddNegatedOperand) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  MOV32I R1, " + Imm(1.5f) + " ;\n" +
                           "  MOV32I R2, " + Imm(5.0f) + " ;\n" +
                           "  FADD R3, R2, -R1 ;\n"),
                  3.5f);
}

TEST(Executor, FmulAbsOperand) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  MOV32I R1, " + Imm(-3.0f) + " ;\n" +
                           "  FMUL R3, |R1|, " + Imm(2.0f) + " ;\n"),
                  6.0f);
}

TEST(Executor, Ffma) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  MOV32I R1, " + Imm(2.0f) + " ;\n" +
                           "  MOV32I R2, " + Imm(3.0f) + " ;\n" +
                           "  MOV32I R4, " + Imm(10.0f) + " ;\n" +
                           "  FFMA R3, R1, R2, R4 ;\n"),
                  16.0f);
}

TEST(Executor, FmnmxMinAndMax) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  MOV32I R1, " + Imm(2.0f) + " ;\n" +
                           "  MOV32I R2, " + Imm(5.0f) + " ;\n" +
                           "  FMNMX R3, R1, R2, PT ;\n"),
                  2.0f);
  ScalarRunner r2;
  EXPECT_FLOAT_EQ(r2.RunF32("  MOV32I R1, " + Imm(2.0f) + " ;\n" +
                            "  MOV32I R2, " + Imm(5.0f) + " ;\n" +
                            "  FMNMX R3, R1, R2, !PT ;\n"),
                  5.0f);
}

TEST(Executor, FselPicksBySourcePredicate) {
  ScalarRunner r;
  EXPECT_FLOAT_EQ(r.RunF32("  ISETP.EQ.AND P0, PT, RZ, RZ, PT ;\n"  // P0 = true
                           "  MOV32I R1, " + Imm(1.0f) + " ;\n" +
                           "  MOV32I R2, " + Imm(2.0f) + " ;\n" +
                           "  FSEL R3, R1, R2, P0 ;\n"),
                  1.0f);
  ScalarRunner r2;
  EXPECT_FLOAT_EQ(r2.RunF32("  ISETP.NE.AND P0, PT, RZ, RZ, PT ;\n"  // P0 = false
                            "  MOV32I R1, " + Imm(1.0f) + " ;\n" +
                            "  MOV32I R2, " + Imm(2.0f) + " ;\n" +
                            "  FSEL R3, R1, R2, P0 ;\n"),
                  2.0f);
}

TEST(Executor, FsetWritesMask) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, " + Imm(3.0f) + " ;\n" +
                    "  FSET.GT.AND R3, R1, " + Imm(1.0f) + ", PT ;\n"),
            0xFFFFFFFFu);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, " + Imm(0.0f) + " ;\n" +
                     "  FSET.GT.AND R3, R1, " + Imm(1.0f) + ", PT ;\n"),
            0u);
}

TEST(Executor, MufuFunctions) {
  ScalarRunner r;
  EXPECT_NEAR(r.RunF32("  MOV32I R1, " + Imm(4.0f) + " ;\n  MUFU.RCP R3, R1 ;\n"),
              0.25f, 1e-6);
  ScalarRunner r2;
  EXPECT_NEAR(r2.RunF32("  MOV32I R1, " + Imm(16.0f) + " ;\n  MUFU.SQRT R3, R1 ;\n"),
              4.0f, 1e-6);
  ScalarRunner r3;
  EXPECT_NEAR(r3.RunF32("  MOV32I R1, " + Imm(8.0f) + " ;\n  MUFU.LG2 R3, R1 ;\n"),
              3.0f, 1e-6);
  ScalarRunner r4;
  EXPECT_NEAR(r4.RunF32("  MOV32I R1, " + Imm(3.0f) + " ;\n  MUFU.EX2 R3, R1 ;\n"),
              8.0f, 1e-5);
  ScalarRunner r5;
  EXPECT_NEAR(r5.RunF32("  MOV32I R1, " + Imm(0.0f) + " ;\n  MUFU.COS R3, R1 ;\n"),
              1.0f, 1e-6);
  ScalarRunner r6;
  EXPECT_NEAR(r6.RunF32("  MOV32I R1, " + Imm(0.0f) + " ;\n  MUFU.SIN R3, R1 ;\n"),
              0.0f, 1e-6);
}

// ---- FP64 (register pairs) ----

TEST(Executor, DaddUsesRegisterPairs) {
  ScalarRunner r;
  r.bank().Write64(0x170, DoubleToBits(1.5));
  r.bank().Write64(0x178, DoubleToBits(2.25));
  EXPECT_DOUBLE_EQ(r.RunF64("  LDC.64 R5, c[0][0x170] ;\n"
                            "  LDC.64 R10, c[0][0x178] ;\n"
                            "  DADD R3, R5, R10 ;\n"),
                   3.75);
}

TEST(Executor, DmulAndDfma) {
  ScalarRunner r;
  r.bank().Write64(0x170, DoubleToBits(3.0));
  r.bank().Write64(0x178, DoubleToBits(4.0));
  EXPECT_DOUBLE_EQ(r.RunF64("  LDC.64 R5, c[0][0x170] ;\n"
                            "  LDC.64 R10, c[0][0x178] ;\n"
                            "  DMUL R3, R5, R10 ;\n"),
                   12.0);
  ScalarRunner r2;
  r2.bank().Write64(0x170, DoubleToBits(3.0));
  r2.bank().Write64(0x178, DoubleToBits(4.0));
  EXPECT_DOUBLE_EQ(r2.RunF64("  LDC.64 R5, c[0][0x170] ;\n"
                             "  LDC.64 R10, c[0][0x178] ;\n"
                             "  DFMA R3, R5, R10, R5 ;\n"),
                   15.0);
}

TEST(Executor, DsetpComparesDoubles) {
  ScalarRunner r;
  r.bank().Write64(0x170, DoubleToBits(1.0));
  r.bank().Write64(0x178, DoubleToBits(2.0));
  EXPECT_EQ(r.Run32("  LDC.64 R5, c[0][0x170] ;\n"
                    "  LDC.64 R10, c[0][0x178] ;\n"
                    "  DSETP.LT.AND P0, PT, R5, R10, PT ;\n"
                    "  SEL R3, 0x1, RZ, P0 ;\n"),
            1u);
}

// ---- integer ----

TEST(Executor, Iadd3ThreeWay) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 10 ;\n  MOV32I R2, 20 ;\n"
                    "  IADD3 R3, R1, R2, 0x5 ;\n"),
            35u);
}

TEST(Executor, ImadAndWide) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 7 ;\n  MOV32I R2, 6 ;\n"
                    "  IMAD R3, R1, R2, 0x3 ;\n"),
            45u);
  // IMAD.WIDE: 0x10000 * 0x10000 = 2^32 needs the pair.
  ScalarRunner r2;
  EXPECT_EQ(r2.Run64("  MOV32I R1, 0x10000 ;\n"
                     "  MOV R5, RZ ;\n  MOV R6, RZ ;\n"
                     "  IMAD.WIDE R3, R1, R1, R5 ;\n"),
            0x100000000ull);
}

TEST(Executor, ImadWideSigned) {
  ScalarRunner r;
  // -2 * 3 sign-extends to the full 64-bit result.
  EXPECT_EQ(r.Run64("  MOV32I R1, -2 ;\n  MOV32I R2, 3 ;\n"
                    "  MOV R5, RZ ;\n  MOV R6, RZ ;\n"
                    "  IMAD.WIDE R3, R1, R2, R5 ;\n"),
            static_cast<std::uint64_t>(-6));
}

TEST(Executor, IsetpSignedVsUnsigned) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, -1 ;\n"
                    "  ISETP.LT.AND P0, PT, R1, RZ, PT ;\n"  // signed: -1 < 0
                    "  SEL R3, 0x1, RZ, P0 ;\n"),
            1u);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, -1 ;\n"
                     "  ISETP.LT.U32.AND P0, PT, R1, RZ, PT ;\n"  // unsigned: max > 0
                     "  SEL R3, 0x1, RZ, P0 ;\n"),
            0u);
}

TEST(Executor, SetpWritesComplementToSecondPred) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  ISETP.EQ.AND P0, P1, RZ, RZ, PT ;\n"
                    "  SEL R1, 0x2, RZ, P0 ;\n"
                    "  SEL R2, 0x1, RZ, P1 ;\n"
                    "  IADD3 R3, R1, R2, RZ ;\n"),
            2u);  // P0 true (2), P1 false (0)
}

TEST(Executor, ShiftOps) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0x3 ;\n  SHL R3, R1, 0x4 ;\n"), 0x30u);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, 0x80000000 ;\n  SHR.U32 R3, R1, 0x4 ;\n"),
            0x08000000u);
  ScalarRunner r3;
  EXPECT_EQ(r3.Run32("  MOV32I R1, 0x80000000 ;\n  SHR.S32 R3, R1, 0x4 ;\n"),
            0xF8000000u);
}

TEST(Executor, FunnelShift) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0x00000001 ;\n  MOV32I R2, 0x80000000 ;\n"
                    "  SHF.R.U32 R3, R2, 0x1f, R1 ;\n"),
            FunnelShiftRight(0x80000000u, 0x1u, 31));
}

TEST(Executor, BitManipulation) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0xF0F0 ;\n  POPC R3, R1 ;\n"), 8u);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, 0x00010000 ;\n  FLO R3, R1 ;\n"), 16u);
  ScalarRunner r3;
  EXPECT_EQ(r3.Run32("  MOV32I R1, 0x1 ;\n  BREV R3, R1 ;\n"), 0x80000000u);
  ScalarRunner r4;
  EXPECT_EQ(r4.Run32("  MOV32I R1, 0x4 ;\n  MOV32I R2, 0x8 ;\n  BMSK R3, R1, R2 ;\n"),
            0x00000FF0u);
  ScalarRunner r5;
  EXPECT_EQ(r5.Run32("  MOV32I R1, 0x80 ;\n  SGXT R3, R1, 0x8 ;\n"), 0xFFFFFF80u);
}

TEST(Executor, Lop3AndLop) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0xFF00 ;\n  MOV32I R2, 0x0FF0 ;\n"
                    "  LOP3 R3, R1, R2, RZ, 0xc0 ;\n"),
            0x0F00u);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, 0xFF00 ;\n  LOP32I.XOR R3, R1, 0x0FF0 ;\n"),
            0xF0F0u);
  ScalarRunner r3;
  EXPECT_EQ(r3.Run32("  MOV32I R1, 0xFF00 ;\n  MOV32I R2, 0x0FF0 ;\n"
                     "  LOP.AND R3, R1, R2 ;\n"),
            0x0F00u);
}

TEST(Executor, ConversionOps) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, " + Imm(-3.7f) + " ;\n  F2I R3, R1 ;\n"),
            static_cast<std::uint32_t>(-3));
  ScalarRunner r2;
  EXPECT_FLOAT_EQ(r2.RunF32("  MOV32I R1, 42 ;\n  I2F R3, R1 ;\n"), 42.0f);
  ScalarRunner r3;
  EXPECT_FLOAT_EQ(r3.RunF32("  MOV32I R1, " + Imm(2.5f) + " ;\n  FRND R3, R1 ;\n"),
                  2.0f);  // round-to-even
  // F2F widening and narrowing through the pair.
  ScalarRunner r4;
  EXPECT_DOUBLE_EQ(r4.RunF64("  MOV32I R1, " + Imm(1.5f) + " ;\n"
                             "  F2F.F64.F32 R3, R1 ;\n"),
                   1.5);
}

TEST(Executor, F2ISaturatesAndHandlesNan) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, " + Imm(1e20f) + " ;\n  F2I R3, R1 ;\n"),
            0x7FFFFFFFu);
  ScalarRunner r2;
  EXPECT_EQ(r2.Run32("  MOV32I R1, 0x7fc00000 ;\n  F2I R3, R1 ;\n"), 0u);  // NaN
}

// ---- movement / predicates ----

TEST(Executor, PrmtAndSel) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0x44332211 ;\n  MOV32I R2, 0x88776655 ;\n"
                    "  PRMT R3, R1, 0x7654, R2 ;\n"),
            0x88776655u);
}

TEST(Executor, P2RAndR2P) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0x5 ;\n"       // bits 0 and 2
                    "  R2P R1, 0x7f ;\n"          // P0=1 P1=0 P2=1
                    "  P2R R3, 0x7f ;\n"),
            0x5u);
}

TEST(Executor, Plop3OnPredicates) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  ISETP.EQ.AND P0, PT, RZ, RZ, PT ;\n"   // P0 = 1
                    "  ISETP.NE.AND P1, PT, RZ, RZ, PT ;\n"   // P1 = 0
                    "  PLOP3 P2, PT, P0, P1, PT, 0x80 ;\n"    // AND3 -> 0
                    "  SEL R3, 0x1, RZ, P2 ;\n"),
            0u);
}

// ---- memory ----

TEST(Executor, GlobalLoadStoreWidths) {
  ScalarRunner r;
  const DevPtr buf = r.mem().Alloc(64);
  r.mem().Write(buf, 0x1122334455667788ull, 8);
  r.bank().Write64(0x170, buf);
  EXPECT_EQ(r.Run32("  LDC.64 R5, c[0][0x170] ;\n  LDG.E.U8 R3, [R5+1] ;\n"), 0x77u);
  ScalarRunner r2;
  const DevPtr buf2 = r2.mem().Alloc(64);
  r2.mem().Write(buf2, 0x80FFull, 2);
  r2.bank().Write64(0x170, buf2);
  EXPECT_EQ(r2.Run32("  LDC.64 R5, c[0][0x170] ;\n  LDG.E.S16 R3, [R5] ;\n"),
            0xFFFF80FFu);
}

TEST(Executor, Vector128LoadStore) {
  ScalarRunner r;
  const DevPtr buf = r.mem().Alloc(64);
  for (int i = 0; i < 4; ++i) {
    r.mem().Write(buf + 4 * static_cast<DevPtr>(i), 0x100u + static_cast<std::uint32_t>(i), 4);
  }
  r.bank().Write64(0x170, buf);
  // Load 128 bits into R4..R7 then sum them.
  EXPECT_EQ(r.Run32("  LDC.64 R10, c[0][0x170] ;\n"
                    "  LDG.E.128 R4, [R10] ;\n"
                    "  IADD3 R3, R4, R5, R6 ;\n"
                    "  IADD3 R3, R3, R7, RZ ;\n"),
            0x100u + 0x101u + 0x102u + 0x103u);
}

TEST(Executor, SharedMemoryAndBarrier) {
  ScalarRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  // 64 threads write tid to shared, barrier, thread 0 sums all.
  const LaunchStats stats = r.RunRaw(
      "  S2R R1, SR_TID.X ;\n"
      "  SHL R2, R1, 0x2 ;\n"
      "  STS [R2], R1 ;\n"
      "  BAR.SYNC ;\n"
      "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R5, RZ ;\n"
      "  MOV R6, RZ ;\n"
      "loop:\n"
      "  SHL R7, R6, 0x2 ;\n"
      "  LDS R8, [R7] ;\n"
      "  IADD3 R5, R5, R8, RZ ;\n"
      "  IADD3 R6, R6, 1, RZ ;\n"
      "  ISETP.LT.AND P1, PT, R6, 0x40, PT ;\n"
      "  @P1 BRA loop ;\n"
      "  LDC.64 R10, c[0][0x160] ;\n"
      "  STG.E.32 [R10], R5 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {64, 1, 1}, /*watchdog=*/0, /*shared_bytes=*/256);
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  const MemAccessResult v = r.mem().Read(out, 4);
  EXPECT_EQ(v.value, 64u * 63u / 2u);
}

TEST(Executor, AtomicAddAccumulatesAcrossThreads) {
  ScalarRunner r;
  const DevPtr counter = r.mem().Alloc(16);
  r.bank().Write64(0x160, counter);
  const LaunchStats stats = r.RunRaw(
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  MOV32I R6, 0x1 ;\n"
      "  RED.ADD [R4], R6 ;\n"
      "  EXIT ;\n",
      {4, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(counter, 4).value, 128u);
}

TEST(Executor, AtomicReturnsOldValue) {
  ScalarRunner r;
  const DevPtr cell = r.mem().Alloc(16);
  r.mem().Write(cell, 41, 4);
  r.bank().Write64(0x170, cell);
  EXPECT_EQ(r.Run32("  LDC.64 R5, c[0][0x170] ;\n"
                    "  MOV32I R10, 0x1 ;\n"  // R6 is the address pair's high half
                    "  ATOMG.ADD R3, [R5], R10 ;\n"),
            41u);
  EXPECT_EQ(r.mem().Read(cell, 4).value, 42u);
}

TEST(Executor, LocalMemoryRoundTrip) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I R1, 0xABCD ;\n"
                    "  MOV R2, 0x10 ;\n"
                    "  STL [R2], R1 ;\n"
                    "  LDL R3, [R2] ;\n"),
            0xABCDu);
}

// ---- control flow & SIMT ----

TEST(Executor, PredicationSkipsAndDoesNotCount) {
  ScalarRunner r;
  const LaunchStats stats = r.RunRaw(
      "  ISETP.NE.AND P0, PT, RZ, RZ, PT ;\n"  // P0 = false
      "  @P0 NOP ;\n"
      "  @P0 NOP ;\n"
      "  EXIT ;\n");
  // 4 warp instructions issued, but only 2 thread instructions executed
  // (the guarded NOPs are predicated off).
  EXPECT_EQ(stats.warp_instructions, 4u);
  EXPECT_EQ(stats.thread_instructions, 2u);
}

TEST(Executor, DivergenceReconverges) {
  ScalarRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  // Odd lanes take the branch; everyone stores lane+bias at the end.
  const LaunchStats stats = r.RunRaw(
      "  S2R R1, SR_LANEID ;\n"
      "  LOP32I.AND R2, R1, 0x1 ;\n"
      "  ISETP.NE.AND P0, PT, R2, RZ, PT ;\n"
      "  MOV R5, RZ ;\n"
      "  @P0 BRA odd ;\n"
      "  MOV32I R5, 0x100 ;\n"
      "  BRA join ;\n"
      "odd:\n"
      "  MOV32I R5, 0x200 ;\n"
      "join:\n"
      "  IADD3 R6, R5, R1, RZ ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R10, R1, 0x4, R8 ;\n"
      "  STG.E.32 [R10], R6 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    const std::uint32_t expected = (lane % 2 == 1 ? 0x200u : 0x100u) + lane;
    EXPECT_EQ(r.mem().Read(out + 4 * lane, 4).value, expected) << "lane " << lane;
  }
}

TEST(Executor, LoopExecutesExactTripCount) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV R3, RZ ;\n"
                    "  MOV R1, RZ ;\n"
                    "loop:\n"
                    "  IADD3 R3, R3, 2, RZ ;\n"
                    "  IADD3 R1, R1, 1, RZ ;\n"
                    "  ISETP.LT.AND P0, PT, R1, 0xa, PT ;\n"
                    "  @P0 BRA loop ;\n"),
            20u);
}

TEST(Executor, ShflModes) {
  ScalarRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.RunRaw(
      "  S2R R1, SR_LANEID ;\n"
      "  SHFL.DOWN R2, R1, 0x1 ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R10, R1, 0x4, R8 ;\n"
      "  STG.E.32 [R10], R2 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_EQ(r.mem().Read(out + 0, 4).value, 1u);    // lane 0 gets lane 1
  EXPECT_EQ(r.mem().Read(out + 4 * 30, 4).value, 31u);
  EXPECT_EQ(r.mem().Read(out + 4 * 31, 4).value, 31u);  // edge keeps own
}

TEST(Executor, VoteBallot) {
  ScalarRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.RunRaw(
      "  S2R R1, SR_LANEID ;\n"
      "  LOP32I.AND R2, R1, 0x1 ;\n"
      "  ISETP.NE.AND P0, PT, R2, RZ, PT ;\n"  // odd lanes true
      "  VOTE.BALLOT R3, P1, P0 ;\n"
      "  ISETP.NE.AND P2, PT, R1, RZ, PT ;\n"
      "  @P2 EXIT ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  STG.E.32 [R8], R3 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_EQ(r.mem().Read(out, 4).value, 0xAAAAAAAAu);
}

TEST(Executor, SpecialRegisters) {
  ScalarRunner r;
  const DevPtr out = r.mem().Alloc(1024);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.RunRaw(
      "  S2R R1, SR_CTAID.X ;\n"
      "  S2R R2, SR_TID.X ;\n"
      "  IMAD R4, R1, c[0][0x0], R2 ;\n"
      "  SHL R5, R1, 0x8 ;\n"
      "  IADD3 R5, R5, R2, RZ ;\n"  // ctaid*256 + tid
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R10, R4, 0x4, R8 ;\n"
      "  STG.E.32 [R10], R5 ;\n"
      "  EXIT ;\n",
      {2, 1, 1}, {16, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_EQ(r.mem().Read(out + 4 * 0, 4).value, 0u);
  EXPECT_EQ(r.mem().Read(out + 4 * 15, 4).value, 15u);
  EXPECT_EQ(r.mem().Read(out + 4 * 16, 4).value, 256u);   // block 1 thread 0
  EXPECT_EQ(r.mem().Read(out + 4 * 31, 4).value, 271u);
}

TEST(Executor, RZAndPTAreImmutable) {
  ScalarRunner r;
  EXPECT_EQ(r.Run32("  MOV32I RZ, 0x1234 ;\n"
                    "  MOV R3, RZ ;\n"),
            0u);
}

// ---- traps ----

TEST(Executor, IllegalAddressTraps) {
  ScalarRunner r;
  const LaunchStats stats = r.RunRaw(
      "  MOV R4, RZ ;\n  MOV R5, RZ ;\n"
      "  LDG.E.32 R3, [R4] ;\n"  // null-ish pointer
      "  EXIT ;\n");
  EXPECT_EQ(stats.trap, TrapKind::kIllegalAddress);
  EXPECT_FALSE(stats.trap_detail.empty());
}

TEST(Executor, MisalignedAddressTraps) {
  ScalarRunner r;
  const DevPtr buf = r.mem().Alloc(64);
  r.bank().Write64(0x170, buf);
  const LaunchStats stats = r.RunRaw(
      "  LDC.64 R4, c[0][0x170] ;\n"
      "  LDG.E.32 R3, [R4+1] ;\n"
      "  EXIT ;\n");
  EXPECT_EQ(stats.trap, TrapKind::kMisalignedAddress);
}

TEST(Executor, UnimplementedOpcodeTraps) {
  ScalarRunner r;
  const LaunchStats stats = r.RunRaw("  TEX R3, R1 ;\n  EXIT ;\n");
  EXPECT_EQ(stats.trap, TrapKind::kIllegalInstruction);
}

TEST(Executor, PcPastEndTraps) {
  ScalarRunner r;
  const LaunchStats stats = r.RunRaw("  NOP ;\n");  // no EXIT
  EXPECT_EQ(stats.trap, TrapKind::kIllegalInstruction);
  EXPECT_NE(stats.trap_detail.find("past the end"), std::string::npos);
}

TEST(Executor, WatchdogCatchesInfiniteLoop) {
  ScalarRunner r;
  const LaunchStats stats = r.RunRaw(
      "loop:\n"
      "  IADD3 R1, R1, 1, RZ ;\n"
      "  BRA loop ;\n",
      {1, 1, 1}, {1, 1, 1}, /*watchdog=*/10000);
  EXPECT_EQ(stats.trap, TrapKind::kTimeout);
}

TEST(Executor, CyclesAccumulate) {
  ScalarRunner r;
  const LaunchStats one = r.RunRaw("  NOP ;\n  EXIT ;\n");
  const LaunchStats many = r.RunRaw(
      "  NOP ;\n  NOP ;\n  NOP ;\n  NOP ;\n  NOP ;\n  EXIT ;\n");
  EXPECT_GT(many.cycles, one.cycles);
}

TEST(Executor, HostApiMisuseThrows) {
  GlobalMemory mem;
  ConstantBank bank;
  CostModel cost;
  const KernelSource kernel = AssembleKernelOrDie("t", "  EXIT ;\n");
  Executor::Request req;
  req.kernel = &kernel;
  req.bank0 = &bank;
  req.global = &mem;
  req.cost = &cost;
  req.launch.grid = {1, 1, 1};
  req.launch.block = {2048, 1, 1};  // too many threads
  EXPECT_THROW(Executor::Run(req), std::logic_error);
  req.launch.block = {0, 1, 1};
  EXPECT_THROW(Executor::Run(req), std::logic_error);
}

}  // namespace
}  // namespace nvbitfi::sim
