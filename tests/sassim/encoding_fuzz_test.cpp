// Randomised robustness tests for the binary encoding and the assembler:
// random-but-valid instructions must round-trip bit-exactly, and random byte
// garbage must decode to a clean error (never crash or mis-accept silently
// invalid fields).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sassim/asm/assembler.h"
#include "sassim/isa/encoding.h"

namespace nvbitfi::sim {
namespace {

Operand RandomOperand(Rng& rng) {
  Operand op;
  switch (rng.UniformInt(0, 5)) {
    case 0:
      op = Operand::Gpr(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      op.negate = rng.Chance(0.3);
      op.absolute = rng.Chance(0.2);
      op.invert = rng.Chance(0.2);
      break;
    case 1:
      op = Operand::Pred(static_cast<std::uint8_t>(rng.UniformInt(0, 7)),
                         rng.Chance(0.5));
      break;
    case 2:
      op = Operand::Imm(rng.Bits32());
      break;
    case 3:
      op = Operand::Const(static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
                          static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFF)));
      break;
    case 4:
      op = Operand::Mem(static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
                        static_cast<std::int32_t>(rng.Bits32()));
      break;
    default:
      op = Operand::Label(static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 20)));
      break;
  }
  return op;
}

Instruction RandomInstruction(Rng& rng) {
  Instruction inst;
  inst.opcode = static_cast<Opcode>(rng.UniformInt(0, kOpcodeCount - 1));
  inst.guard_pred = static_cast<std::uint8_t>(rng.UniformInt(0, 7));
  inst.guard_negate = rng.Chance(0.5);
  inst.dest_gpr = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  inst.dest_pred = static_cast<std::uint8_t>(rng.UniformInt(0, 7));
  inst.dest_pred2 = static_cast<std::uint8_t>(rng.UniformInt(0, 7));
  inst.num_src = static_cast<std::uint8_t>(rng.UniformInt(0, kMaxSrcOperands));
  for (int i = 0; i < inst.num_src; ++i) {
    inst.src[static_cast<std::size_t>(i)] = RandomOperand(rng);
  }
  Modifiers& m = inst.mods;
  m.cmp = static_cast<CmpOp>(rng.UniformInt(0, 7));
  m.bool_op = static_cast<BoolOp>(rng.UniformInt(0, 2));
  m.mufu = static_cast<MufuFunc>(rng.UniformInt(0, 6));
  m.width = static_cast<MemWidth>(rng.UniformInt(0, 4));
  m.sign_extend = rng.Chance(0.5);
  m.src_signed = rng.Chance(0.5);
  m.wide_src = rng.Chance(0.5);
  m.wide_dst = rng.Chance(0.5);
  m.shfl = static_cast<ShflMode>(rng.UniformInt(0, 3));
  m.atomic = static_cast<AtomicOp>(rng.UniformInt(0, 7));
  m.vote = static_cast<VoteMode>(rng.UniformInt(0, 2));
  m.shift_dir = rng.Chance(0.5) ? ShiftDir::kLeft : ShiftDir::kRight;
  m.lut = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  m.sreg = static_cast<SpecialReg>(
      rng.UniformInt(0, static_cast<std::uint64_t>(SpecialReg::kCount) - 1));
  return inst;
}

TEST(EncodingFuzz, RandomValidInstructionsRoundTrip) {
  Rng rng(20210628);  // DSN'21 conference date
  for (int i = 0; i < 2000; ++i) {
    const Instruction inst = RandomInstruction(rng);
    const EncodedInstruction enc = Encode(inst);
    const DecodeResult decoded = Decode(enc);
    ASSERT_TRUE(decoded.ok) << "iteration " << i << ": " << decoded.error << "\n"
                            << inst.ToString();
    EXPECT_EQ(Encode(decoded.instruction), enc) << "iteration " << i;
  }
}

TEST(EncodingFuzz, RandomBytesNeverCrashTheDecoder) {
  Rng rng(99);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    EncodedInstruction enc;
    for (std::uint64_t& word : enc.words) {
      word = static_cast<std::uint64_t>(rng.Bits32()) << 32 | rng.Bits32();
    }
    const DecodeResult decoded = Decode(enc);
    if (decoded.ok) {
      // Anything the decoder accepts must re-encode losslessly.
      EXPECT_EQ(Decode(Encode(decoded.instruction)).ok, true);
      ++accepted;
    } else {
      EXPECT_FALSE(decoded.error.empty());
    }
  }
  // Random 256-bit patterns mostly fail validation (opcode id 0..170 of 256
  // alone rejects a third).
  EXPECT_LT(accepted, 5000);
}

TEST(AssemblerFuzz, GarbageLinesErrorCleanly) {
  Rng rng(7);
  const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
      " \t.,;:[]()@!|~-+#";
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const int length = static_cast<int>(rng.UniformInt(1, 60));
    for (int c = 0; c < length; ++c) {
      line += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
    }
    // Must never crash; almost always errors, occasionally parses by luck.
    const AssemblyResult result = Assemble(".kernel fuzz\n" + line + "\n.endkernel\n");
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(AssemblerFuzz, TruncatedDirectivesErrorCleanly) {
  const char* cases[] = {
      ".kernel",
      ".kernel \n",
      ".endkernel\n",
      ".kernel a\n.kernel b\n",
      ".kernel a regs=\n.endkernel\n",
      ".kernel a\nL:\n",          // label then missing .endkernel
      ".kernel a\n@\n.endkernel\n",
      ".kernel a\n@P0\n.endkernel\n",
      ".kernel a\nBRA\n",         // branch with no target, missing end
  };
  for (const char* source : cases) {
    const AssemblyResult result = Assemble(source);
    EXPECT_FALSE(result.ok) << source;
    EXPECT_FALSE(result.error.empty()) << source;
  }
}

}  // namespace
}  // namespace nvbitfi::sim
