#include "sassim/isa/instruction.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"

namespace nvbitfi::sim {
namespace {

Instruction Parse(const std::string& line) {
  return AssembleKernelOrDie("t", line).instructions.at(0);
}

TEST(Instruction, MemWidthBytes) {
  EXPECT_EQ(MemWidthBytes(MemWidth::k8), 1);
  EXPECT_EQ(MemWidthBytes(MemWidth::k16), 2);
  EXPECT_EQ(MemWidthBytes(MemWidth::k32), 4);
  EXPECT_EQ(MemWidthBytes(MemWidth::k64), 8);
  EXPECT_EQ(MemWidthBytes(MemWidth::k128), 16);
}

TEST(Instruction, DestGprCountScalar) {
  EXPECT_EQ(DestGprCount(Parse("  FADD R1, R2, R3 ;")), 1);
  EXPECT_EQ(DestGprCount(Parse("  STG.E.32 [R2], R4 ;")), 0);
  EXPECT_EQ(DestGprCount(Parse("  EXIT ;")), 0);
  EXPECT_EQ(DestGprCount(Parse("  ISETP.LT.AND P0, PT, R1, R2, PT ;")), 0);
}

TEST(Instruction, DestGprCountPairs) {
  EXPECT_EQ(DestGprCount(Parse("  DADD R2, R4, R6 ;")), 2);
  EXPECT_EQ(DestGprCount(Parse("  LDG.E.64 R2, [R4] ;")), 2);
  EXPECT_EQ(DestGprCount(Parse("  LDG.E.128 R4, [R8] ;")), 4);
  EXPECT_EQ(DestGprCount(Parse("  IMAD.WIDE R2, R1, 0x4, R4 ;")), 2);
  EXPECT_EQ(DestGprCount(Parse("  F2F.F64.F32 R2, R1 ;")), 2);
}

TEST(Instruction, DestGprCountDiscardedDest) {
  EXPECT_EQ(DestGprCount(Parse("  FADD RZ, R2, R3 ;")), 0);
}

TEST(Instruction, WritesGprPair) {
  EXPECT_TRUE(WritesGprPair(Parse("  DMUL R2, R4, R6 ;")));
  EXPECT_TRUE(WritesGprPair(Parse("  LDG.E.64 R2, [R4] ;")));
  EXPECT_FALSE(WritesGprPair(Parse("  LDG.E.32 R2, [R4] ;")));
  EXPECT_FALSE(WritesGprPair(Parse("  FADD R2, R4, R6 ;")));
}

TEST(Instruction, ToStringRendersDisassembly) {
  const std::string rendered = Parse("  @!P2 FFMA R4, R2, c[0][0x168], R6 ;").ToString();
  EXPECT_NE(rendered.find("@!P2"), std::string::npos);
  EXPECT_NE(rendered.find("FFMA"), std::string::npos);
  EXPECT_NE(rendered.find("R4"), std::string::npos);
  EXPECT_NE(rendered.find("c[0x0][0x168]"), std::string::npos);
}

TEST(Instruction, ToStringOperandModifiers) {
  const std::string rendered = Parse("  FADD R1, -R2, |R3| ;").ToString();
  EXPECT_NE(rendered.find("-R2"), std::string::npos);
  EXPECT_NE(rendered.find("|R3|"), std::string::npos);
  const std::string mem = Parse("  LDG.E.32 R1, [R4+-8] ;").ToString();
  EXPECT_NE(mem.find("[R4-8]"), std::string::npos);
}

TEST(Instruction, ToStringPredicates) {
  const std::string rendered = Parse("  ISETP.LT.AND P0, P1, R2, R3, !P4 ;").ToString();
  EXPECT_NE(rendered.find("P0"), std::string::npos);
  EXPECT_NE(rendered.find("P1"), std::string::npos);
  EXPECT_NE(rendered.find("!P4"), std::string::npos);
}

TEST(Instruction, SpecialRegNames) {
  EXPECT_EQ(SpecialRegName(SpecialReg::kTidX), "SR_TID.X");
  EXPECT_EQ(SpecialRegName(SpecialReg::kCtaIdZ), "SR_CTAID.Z");
  EXPECT_EQ(SpecialRegName(SpecialReg::kLaneId), "SR_LANEID");
}

}  // namespace
}  // namespace nvbitfi::sim
