// Checkpoint/restore engine tests at the driver level: record/replay
// bit-identity, sticky-error and device-log restoration, watchdog and
// host-divergence fallbacks, and Context Snapshot()/Restore() round trips.
#include "sassim/runtime/checkpoint.h"

#include <gtest/gtest.h>

#include <vector>

#include "sassim/runtime/driver.h"

namespace nvbitfi::sim {
namespace {

// Single active thread increments out[0] once per launch.
constexpr const char* kBumpKernel =
    ".kernel bump\n"
    "  S2R R1, SR_TID.X ;\n"
    "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
    "  @P0 EXIT ;\n"
    "  LDC.64 R4, c[0][0x160] ;\n"
    "  LDG.E.32 R6, [R4] ;\n"
    "  IADD3 R6, R6, 1, RZ ;\n"
    "  STG.E.32 [R4], R6 ;\n"
    "  EXIT ;\n"
    ".endkernel\n";

// Stores through its (deliberately invalid) pointer parameter.
constexpr const char* kTrapKernel =
    ".kernel trap\n"
    "  LDC.64 R4, c[0][0x160] ;\n"
    "  STG.E.32 [R4], RZ ;\n"
    "  EXIT ;\n"
    ".endkernel\n";

struct ProgramResult {
  std::uint32_t value = 0;
  std::uint64_t cycles = 0;
  std::uint64_t thread_instructions = 0;
  CuResult final_error = CuResult::kSuccess;
};

// The deterministic host program every test replays: alloc, upload `init`,
// launch bump `launches` times, read back.
ProgramResult RunBumps(Context& ctx, std::uint32_t init, int launches) {
  Module* module = nullptr;
  EXPECT_EQ(ctx.ModuleLoadText(kBumpKernel, &module), CuResult::kSuccess);
  DevPtr out = 0;
  EXPECT_EQ(ctx.MemAlloc(&out, 16), CuResult::kSuccess);
  EXPECT_EQ(ctx.MemcpyHtoD(out, &init, 4), CuResult::kSuccess);
  Function* fn = ctx.GetFunction("bump");
  const std::uint64_t params[] = {out};
  for (int i = 0; i < launches; ++i) {
    EXPECT_EQ(ctx.LaunchKernel(fn, Dim3{1, 1, 1}, Dim3{32, 1, 1}, params),
              CuResult::kSuccess);
  }
  ProgramResult result;
  ctx.MemcpyDtoH(&result.value, out, 4);
  result.cycles = ctx.total_cycles();
  result.thread_instructions = ctx.total_thread_instructions();
  result.final_error = ctx.last_error();
  return result;
}

TEST(Checkpoint, GoldenRunRecordsOneCheckpointPerExecutedLaunch) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  RunBumps(golden, 0, 3);

  ASSERT_EQ(stream.launches().size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const LaunchCheckpoint& cp = stream.launches()[i];
    EXPECT_EQ(cp.kernel_name, "bump");
    EXPECT_EQ(cp.launch_ordinal, i);
    EXPECT_EQ(cp.global_ordinal, i);
    EXPECT_GT(cp.stats.thread_instructions, 0u);
    EXPECT_EQ(cp.post_state.sticky_error, CuResult::kSuccess);
    EXPECT_EQ(stream.FindGlobalOrdinal(i), &cp);
  }
  EXPECT_EQ(stream.FindGlobalOrdinal(3), nullptr);
  EXPECT_EQ(stream.GlobalOrdinalOf("bump", 2), 2u);
  EXPECT_EQ(stream.GlobalOrdinalOf("bump", 3), std::nullopt);
  EXPECT_EQ(stream.GlobalOrdinalOf("other", 0), std::nullopt);
}

TEST(Checkpoint, RecordingDoesNotChangeAccounting) {
  Context live;
  const ProgramResult baseline = RunBumps(live, 0, 3);

  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  const ProgramResult recorded = RunBumps(golden, 0, 3);

  EXPECT_EQ(recorded.value, baseline.value);
  EXPECT_EQ(recorded.cycles, baseline.cycles);
  EXPECT_EQ(recorded.thread_instructions, baseline.thread_instructions);
}

TEST(Checkpoint, ReplayIsBitIdenticalToLiveExecution) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  const ProgramResult baseline = RunBumps(golden, 0, 3);

  // Fast-forward the first two launches, execute the third live.
  Context replay;
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 2, &stats);
  const ProgramResult replayed = RunBumps(replay, 0, 3);

  EXPECT_EQ(replayed.value, baseline.value);
  EXPECT_EQ(replayed.cycles, baseline.cycles);
  EXPECT_EQ(replayed.thread_instructions, baseline.thread_instructions);
  EXPECT_EQ(replayed.final_error, CuResult::kSuccess);
  EXPECT_EQ(stats.launches_fast_forwarded, 2u);
  EXPECT_EQ(stats.launches_executed, 1u);
  EXPECT_EQ(stats.host_divergences, 0u);
  EXPECT_EQ(stats.watchdog_fallbacks, 0u);
  EXPECT_EQ(stats.thread_instructions_saved,
            stream.launches()[0].stats.thread_instructions +
                stream.launches()[1].stats.thread_instructions);
}

TEST(Checkpoint, ReplayOfEveryLaunchRestoresFinalState) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  const ProgramResult baseline = RunBumps(golden, 0, 3);

  Context replay;
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 3, &stats);
  const ProgramResult replayed = RunBumps(replay, 0, 3);

  EXPECT_EQ(replayed.value, baseline.value);
  EXPECT_EQ(replayed.cycles, baseline.cycles);
  EXPECT_EQ(stats.launches_fast_forwarded, 3u);
  EXPECT_EQ(stats.launches_executed, 0u);
}

TEST(Checkpoint, StickyErrorAndDeviceLogSurviveFastForward) {
  auto run_trap = [](Context& ctx) {
    Module* module = nullptr;
    EXPECT_EQ(ctx.ModuleLoadText(kTrapKernel, &module), CuResult::kSuccess);
    // 0x10 is below the heap base: the store faults.
    const std::uint64_t params[] = {0x10};
    EXPECT_EQ(ctx.LaunchKernel(ctx.GetFunction("trap"), Dim3{1, 1, 1},
                               Dim3{1, 1, 1}, params),
              CuResult::kSuccess);
    // Submitted after the sticky error: never executes, never records.
    EXPECT_EQ(ctx.LaunchKernel(ctx.GetFunction("trap"), Dim3{1, 1, 1},
                               Dim3{1, 1, 1}, params),
              CuResult::kSuccess);
  };

  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  run_trap(golden);
  ASSERT_EQ(golden.last_error(), CuResult::kIllegalAddress);
  ASSERT_EQ(stream.launches().size(), 1u);  // the poisoned launch left no entry
  ASSERT_FALSE(golden.device().log().empty());

  Context replay;
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 1, &stats);
  run_trap(replay);

  // The "potential DUE" evidence — sticky error, XID entries, and their
  // sequence numbering — must be exactly what the golden run produced.
  EXPECT_EQ(replay.last_error(), CuResult::kIllegalAddress);
  const auto& golden_log = golden.device().log().entries();
  const auto& replay_log = replay.device().log().entries();
  ASSERT_EQ(replay_log.size(), golden_log.size());
  for (std::size_t i = 0; i < golden_log.size(); ++i) {
    EXPECT_EQ(replay_log[i].sequence, golden_log[i].sequence);
    EXPECT_EQ(replay_log[i].trap, golden_log[i].trap);
    EXPECT_EQ(replay_log[i].message, golden_log[i].message);
  }
  EXPECT_EQ(replay.device().log().next_sequence(),
            golden.device().log().next_sequence());
  EXPECT_EQ(stats.launches_fast_forwarded, 1u);
  EXPECT_EQ(replay.total_cycles(), golden.total_cycles());
}

TEST(Checkpoint, WatchdogTighterThanRecordingExecutesLive) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  RunBumps(golden, 0, 3);
  const std::uint64_t per_launch = stream.launches()[0].stats.thread_instructions;

  // Reference: what an uncheckpointed run under this watchdog does (the
  // first launch trips it and poisons the context).
  Context capped;
  capped.set_launch_watchdog(per_launch - 1);
  const ProgramResult capped_result = RunBumps(capped, 0, 3);
  ASSERT_EQ(capped_result.final_error, CuResult::kLaunchTimeout);

  // Replay under the same watchdog: the recorded launch exceeds the budget,
  // so it must execute live and trap — fast-forwarding it would silently
  // flip a Timeout DUE into a clean run.
  Context replay;
  replay.set_launch_watchdog(per_launch - 1);
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 3, &stats);
  const ProgramResult replayed = RunBumps(replay, 0, 3);

  EXPECT_EQ(replayed.final_error, CuResult::kLaunchTimeout);
  EXPECT_EQ(replayed.value, capped_result.value);
  EXPECT_EQ(replayed.cycles, capped_result.cycles);
  EXPECT_EQ(replayed.thread_instructions, capped_result.thread_instructions);
  EXPECT_EQ(stats.watchdog_fallbacks, 1u);
  EXPECT_EQ(stats.launches_fast_forwarded, 0u);
  EXPECT_EQ(stats.host_divergences, 0u);
}

TEST(Checkpoint, WatchdogLooserThanRecordingStillFastForwards) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  const ProgramResult baseline = RunBumps(golden, 0, 3);
  const std::uint64_t per_launch = stream.launches()[0].stats.thread_instructions;

  Context replay;
  replay.set_launch_watchdog(per_launch * 20);
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 3, &stats);
  const ProgramResult replayed = RunBumps(replay, 0, 3);

  EXPECT_EQ(replayed.value, baseline.value);
  EXPECT_EQ(replayed.cycles, baseline.cycles);
  EXPECT_EQ(stats.launches_fast_forwarded, 3u);
  EXPECT_EQ(stats.watchdog_fallbacks, 0u);
}

TEST(Checkpoint, DivergentHostUploadFallsBackToLiveExecution) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  RunBumps(golden, 0, 3);

  // The replayed host program uploads different input: restoring golden
  // pages would compute the wrong answer, so every launch must run live.
  Context reference;
  const ProgramResult expected = RunBumps(reference, 5, 3);

  Context replay;
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 3, &stats);
  const ProgramResult replayed = RunBumps(replay, 5, 3);

  EXPECT_EQ(replayed.value, 8u);
  EXPECT_EQ(replayed.value, expected.value);
  EXPECT_EQ(replayed.cycles, expected.cycles);
  EXPECT_EQ(replayed.thread_instructions, expected.thread_instructions);
  EXPECT_EQ(stats.host_divergences, 1u);  // flagged once, then stays live
  EXPECT_EQ(stats.launches_fast_forwarded, 0u);
  EXPECT_EQ(stats.launches_executed, 3u);
}

TEST(Checkpoint, DivergentAllocationSizeFallsBackToLiveExecution) {
  Context golden;
  CheckpointStream stream;
  golden.RecordCheckpoints(&stream);
  {
    Module* module = nullptr;
    ASSERT_EQ(golden.ModuleLoadText(kBumpKernel, &module), CuResult::kSuccess);
    DevPtr out = 0;
    ASSERT_EQ(golden.MemAlloc(&out, 16), CuResult::kSuccess);
    const std::uint64_t params[] = {out};
    ASSERT_EQ(golden.LaunchKernel(golden.GetFunction("bump"), Dim3{1, 1, 1},
                                  Dim3{32, 1, 1}, params),
              CuResult::kSuccess);
  }

  Context replay;
  ReplayStats stats;
  replay.ReplayCheckpoints(&stream, 1, &stats);
  {
    Module* module = nullptr;
    ASSERT_EQ(replay.ModuleLoadText(kBumpKernel, &module), CuResult::kSuccess);
    DevPtr out = 0;
    ASSERT_EQ(replay.MemAlloc(&out, 32), CuResult::kSuccess);  // different size
    const std::uint64_t params[] = {out};
    ASSERT_EQ(replay.LaunchKernel(replay.GetFunction("bump"), Dim3{1, 1, 1},
                                  Dim3{32, 1, 1}, params),
              CuResult::kSuccess);
  }
  EXPECT_EQ(stats.host_divergences, 1u);
  EXPECT_EQ(stats.launches_fast_forwarded, 0u);
  EXPECT_EQ(stats.launches_executed, 1u);
}

TEST(Checkpoint, ContextSnapshotRestoreRoundTrip) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kBumpKernel, &module), CuResult::kSuccess);
  DevPtr out = 0;
  ASSERT_EQ(ctx.MemAlloc(&out, 16), CuResult::kSuccess);
  const std::uint32_t init = 7;
  ASSERT_EQ(ctx.MemcpyHtoD(out, &init, 4), CuResult::kSuccess);

  const SimState state = ctx.Snapshot();
  const std::uint64_t cycles_at_snapshot = ctx.total_cycles();

  const std::uint64_t params[] = {out};
  ASSERT_EQ(ctx.LaunchKernel(ctx.GetFunction("bump"), Dim3{1, 1, 1},
                             Dim3{32, 1, 1}, params),
            CuResult::kSuccess);
  std::uint32_t value = 0;
  ASSERT_EQ(ctx.MemcpyDtoH(&value, out, 4), CuResult::kSuccess);
  EXPECT_EQ(value, 8u);
  EXPECT_GT(ctx.total_cycles(), cycles_at_snapshot);

  ctx.Restore(state);
  EXPECT_EQ(ctx.total_cycles(), cycles_at_snapshot);
  EXPECT_EQ(ctx.total_launches(), 0u);
  ASSERT_EQ(ctx.MemcpyDtoH(&value, out, 4), CuResult::kSuccess);
  EXPECT_EQ(value, 7u);

  // The restored context relaunches exactly as the original timeline did.
  ASSERT_EQ(ctx.LaunchKernel(ctx.GetFunction("bump"), Dim3{1, 1, 1},
                             Dim3{32, 1, 1}, params),
            CuResult::kSuccess);
  ASSERT_EQ(ctx.MemcpyDtoH(&value, out, 4), CuResult::kSuccess);
  EXPECT_EQ(value, 8u);
  EXPECT_EQ(ctx.total_launches(), 1u);
}

}  // namespace
}  // namespace nvbitfi::sim
