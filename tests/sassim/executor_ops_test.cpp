// Table-driven semantic coverage for the scalar ALU subset, plus SIMT
// collectives and memory-space behaviours not covered by executor_test.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.h"
#include "common/strings.h"
#include "sassim/asm/assembler.h"
#include "sassim/core/executor.h"

namespace nvbitfi::sim {
namespace {

// A scalar ALU case: the body may use R1 and R2 (preloaded with `a` and `b`)
// and must leave its result in R3.
struct AluCase {
  const char* label;
  const char* body;
  std::uint32_t a;
  std::uint32_t b;
  std::uint32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpectedValue) {
  const AluCase& c = GetParam();
  GlobalMemory mem;
  ConstantBank bank;
  CostModel cost;
  const DevPtr out = mem.Alloc(64);
  bank.Write64(0x160, out);
  bank.Write32(0x170, c.a);
  bank.Write32(0x174, c.b);
  bank.Write32(0x00, 1);  // blockDim.x

  std::string body;
  body += "  MOV R1, c[0][0x170] ;\n";
  body += "  MOV R2, c[0][0x174] ;\n";
  body += c.body;
  body +=
      "\n  LDC.64 R8, c[0][0x160] ;\n"
      "  STG.E.32 [R8], R3 ;\n"
      "  EXIT ;\n";

  const KernelSource kernel = AssembleKernelOrDie("t", body);
  Executor::Request req;
  req.kernel = &kernel;
  req.launch.kernel_name = "t";
  req.launch.grid = {1, 1, 1};
  req.launch.block = {1, 1, 1};
  req.bank0 = &bank;
  req.global = &mem;
  req.cost = &cost;
  const LaunchStats stats = Executor::Run(req);
  ASSERT_EQ(stats.trap, TrapKind::kNone) << c.label << ": " << stats.trap_detail;
  EXPECT_EQ(mem.Read(out, 4).value, c.expected) << c.label;
}

constexpr std::uint32_t F(float v) { return std::bit_cast<std::uint32_t>(v); }

const AluCase kAluCases[] = {
    // Integer min/max with signedness.
    {"imnmx_min_signed", "  IMNMX R3, R1, R2, PT ;", 0xFFFFFFFF, 5, 0xFFFFFFFF},
    {"imnmx_max_signed", "  IMNMX R3, R1, R2, !PT ;", 0xFFFFFFFF, 5, 5},
    {"imnmx_min_unsigned", "  IMNMX.U32 R3, R1, R2, PT ;", 0xFFFFFFFF, 5, 5},
    {"imnmx_max_unsigned", "  IMNMX.U32 R3, R1, R2, !PT ;", 0xFFFFFFFF, 5, 0xFFFFFFFF},
    // Absolute difference / abs.
    {"iabs_negative", "  IABS R3, R1 ;", static_cast<std::uint32_t>(-42), 0, 42},
    {"iabs_positive", "  IABS R3, R1 ;", 42, 0, 42},
    {"vabsdiff", "  VABSDIFF R3, R1, R2 ;", 10, 25, 15},
    {"vabsdiff_negative",
     "  VABSDIFF R3, R1, R2 ;",
     static_cast<std::uint32_t>(-10), 25, 35},
    // 32-bit-immediate arithmetic forms.
    {"iadd32i", "  IADD32I R3, R1, 0x100 ;", 7, 0, 0x107},
    {"fadd32i", "  FADD32I R3, R1, 0x40000000 ;", F(1.5f), 0, F(3.5f)},
    {"fmul32i", "  FMUL32I R3, R1, 0x40000000 ;", F(1.5f), 0, F(3.0f)},
    {"ffma32i", "  FFMA32I R3, R1, 0x40000000, R2 ;", F(2.0f), F(1.0f), F(5.0f)},
    // Select.
    {"sel_true", "  ISETP.EQ.AND P0, PT, RZ, RZ, PT ;\n  SEL R3, R1, R2, P0 ;", 11, 22,
     11},
    {"sel_false", "  ISETP.NE.AND P0, PT, RZ, RZ, PT ;\n  SEL R3, R1, R2, P0 ;", 11, 22,
     22},
    {"sel_negated_pred", "  ISETP.EQ.AND P0, PT, RZ, RZ, PT ;\n  SEL R3, R1, R2, !P0 ;",
     11, 22, 22},
    // Shifts with oversized amounts (hardware masks to 5 bits).
    {"shl_masks_amount", "  SHL R3, R1, R2 ;", 1, 33, 2},
    {"shr_zero_amount", "  SHR.U32 R3, R1, R2 ;", 0x80, 0, 0x80},
    // Funnel shift left.
    {"shf_left", "  SHF.L R3, R1, 0x4, R2 ;", 0xF0000000, 0x0000000A, 0xAF},
    // Logic.
    {"lop_or", "  LOP.OR R3, R1, R2 ;", 0xF0, 0x0F, 0xFF},
    {"lop_xor", "  LOP.XOR R3, R1, R2 ;", 0xFF, 0x0F, 0xF0},
    {"lop32i_and", "  LOP32I.AND R3, R1, 0xFF00 ;", 0x1234, 0, 0x1200},
    {"lop3_majority", "  LOP3 R3, R1, R2, R1, 0xe8 ;", 0b1100, 0b1010, 0b1100},
    // Bit manipulation edges.
    {"bmsk_full_width", "  BMSK R3, RZ, R2 ;", 0, 32, 0xFFFFFFFF},
    {"bmsk_zero_count", "  BMSK R3, R1, RZ ;", 4, 0, 0},
    {"sgxt_width8", "  SGXT R3, R1, R2 ;", 0xFF, 8, 0xFFFFFFFF},
    {"sgxt_positive", "  SGXT R3, R1, R2 ;", 0x7F, 8, 0x7F},
    {"popc_zero", "  POPC R3, RZ ;", 0, 0, 0},
    {"flo_zero_is_minus_one", "  FLO R3, RZ ;", 0, 0, 0xFFFFFFFF},
    {"brev_nibbles", "  BREV R3, R1 ;", 0xF0000000, 0, 0x0000000F},
    // Conversions.
    {"i2f_unsigned_max", "  I2F.F32.U32 R3, R1 ;", 0xFFFFFFFF, 0, F(4294967296.0f)},
    {"i2f_signed_minus_one", "  I2F.F32.S32 R3, R1 ;", 0xFFFFFFFF, 0, F(-1.0f)},
    {"f2i_negative_truncates", "  F2I R3, R1 ;", F(-2.9f), 0,
     static_cast<std::uint32_t>(-2)},
    {"f2i_saturates_low", "  F2I R3, R1 ;", F(-1e20f), 0, 0x80000000},
    {"frnd_half_to_even", "  FRND R3, R1 ;", F(3.5f), 0, F(4.0f)},
    {"i2i_copy", "  I2I R3, R1 ;", 0xABCD, 0, 0xABCD},
    // FP corner cases.
    {"fadd_inf", "  FADD R3, R1, R2 ;", F(std::numeric_limits<float>::infinity()),
     F(1.0f), F(std::numeric_limits<float>::infinity())},
    {"fmul_signed_zero", "  FMUL R3, R1, R2 ;", F(-0.0f), F(5.0f), F(-0.0f)},
    {"fset_false_gives_zero", "  FSET.LT.AND R3, R1, R2, PT ;", F(5.0f), F(1.0f), 0},
    // Predicate system ops.
    {"psetp_and",
     "  ISETP.EQ.AND P0, PT, RZ, RZ, PT ;\n"
     "  ISETP.EQ.AND P1, PT, RZ, RZ, PT ;\n"
     "  PSETP.AND P2, PT, P0, P1, PT ;\n"
     "  SEL R3, R1, R2, P2 ;",
     77, 88, 77},
    {"plop3_or3",
     "  ISETP.NE.AND P0, PT, RZ, RZ, PT ;\n"  // false
     "  PLOP3 P2, PT, P0, P0, PT, 0xfe ;\n"   // OR3(false,false,true) = true
     "  SEL R3, R1, R2, P2 ;",
     77, 88, 77},
    // PRMT byte reverse.
    {"prmt_byte_reverse", "  PRMT R3, R1, 0x0123, RZ ;", 0x44332211, 0, 0x11223344},
    // Packed FP16 (lo half, hi half): a = (1.0h, 2.0h), b = (0.5h, -1.0h).
    {"hadd2", "  HADD2 R3, R1, R2 ;", 0x40003C00, 0xBC003800,
     /* (1.5h, 1.0h) */ 0x3C003E00},
    {"hmul2", "  HMUL2 R3, R1, R2 ;", 0x40003C00, 0xBC003800,
     /* (0.5h, -2.0h) */ 0xC0003800},
    {"hfma2", "  HFMA2 R3, R1, R2, R1 ;", 0x40003C00, 0x38003800,
     /* (1*0.5+1, 2*0.5+2) = (1.5h, 3.0h) */ 0x42003E00},
    {"hmnmx2_min", "  HMNMX2 R3, R1, R2, PT ;", 0x40003C00, 0xBC003800,
     /* (min(1,.5), min(2,-1)) = (0.5h, -1.0h) */ 0xBC003800},
    {"hmnmx2_max", "  HMNMX2 R3, R1, R2, !PT ;", 0x40003C00, 0xBC003800,
     /* (1.0h, 2.0h) */ 0x40003C00},
    // MOV from constant bank.
    {"mov_const", "  MOV R3, c[0][0x174] ;", 0, 0xBEEF, 0xBEEF},
    // LEA / ISCADD shifted add.
    {"lea_shift4", "  LEA R3, R1, R2, 0x4 ;", 3, 100, 148},
    {"iscadd_shift2", "  ISCADD R3, R1, R2, 0x2 ;", 5, 10, 30},
};

INSTANTIATE_TEST_SUITE_P(ScalarOps, AluSemantics, ::testing::ValuesIn(kAluCases),
                         [](const ::testing::TestParamInfo<AluCase>& info) {
                           return std::string(info.param.label);
                         });

// ---- SIMT / memory behaviours ----

class OpsRunner {
 public:
  LaunchStats Run(const std::string& body, Dim3 grid, Dim3 block,
                  std::uint32_t shared_bytes = 0) {
    KernelSource kernel = AssembleKernelOrDie("t", body);
    kernel.shared_bytes = shared_bytes;
    bank_.Write32(0x00, block.x);
    bank_.Write32(0x0c, grid.x);
    Executor::Request req;
    req.kernel = &kernel;
    req.launch.kernel_name = "t";
    req.launch.grid = grid;
    req.launch.block = block;
    req.bank0 = &bank_;
    req.global = &mem_;
    req.cost = &cost_;
    req.num_sms = 8;
    return Executor::Run(req);
  }

  GlobalMemory& mem() { return mem_; }
  ConstantBank& bank() { return bank_; }

 private:
  GlobalMemory mem_;
  ConstantBank bank_;
  CostModel cost_;
};

TEST(OpsExecutor, ShflUpAndIdx) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(512);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  S2R R1, SR_LANEID ;\n"
      "  SHFL.UP R2, R1, 0x2 ;\n"   // lane i gets i-2 (or own for i<2)
      "  SHFL.IDX R3, R1, 0x5 ;\n"  // everyone gets lane 5's value
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R10, R1, 0x8, R8 ;\n"
      "  STG.E.32 [R10], R2 ;\n"
      "  STG.E.32 [R10+4], R3 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(out + 8 * 0, 4).value, 0u);       // lane 0 keeps own
  EXPECT_EQ(r.mem().Read(out + 8 * 1, 4).value, 1u);       // lane 1 keeps own
  EXPECT_EQ(r.mem().Read(out + 8 * 10, 4).value, 8u);      // lane 10 gets 8
  EXPECT_EQ(r.mem().Read(out + 8 * 7 + 4, 4).value, 5u);   // IDX: everyone 5
  EXPECT_EQ(r.mem().Read(out + 8 * 31 + 4, 4).value, 5u);
}

TEST(OpsExecutor, ShflBflyButterfly) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  S2R R1, SR_LANEID ;\n"
      "  SHFL.BFLY R2, R1, 0x10 ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R10, R1, 0x4, R8 ;\n"
      "  STG.E.32 [R10], R2 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_EQ(r.mem().Read(out + 4 * 0, 4).value, 16u);
  EXPECT_EQ(r.mem().Read(out + 4 * 16, 4).value, 0u);
  EXPECT_EQ(r.mem().Read(out + 4 * 5, 4).value, 21u);
}

TEST(OpsExecutor, VoteAllAndAny) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(256);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  S2R R1, SR_LANEID ;\n"
      "  ISETP.GE.AND P0, PT, R1, RZ, PT ;\n"   // true on every lane
      "  VOTE.ALL R4, P1, P0 ;\n"
      "  ISETP.EQ.AND P2, PT, R1, 0x3, PT ;\n"  // true on lane 3 only
      "  VOTE.ALL R5, P3, P2 ;\n"
      "  VOTE.ANY R6, P4, P2 ;\n"
      "  ISETP.NE.AND P5, PT, R1, RZ, PT ;\n"
      "  @P5 EXIT ;\n"
      "  SEL R7, 0x1, RZ, P1 ;\n"
      "  SEL R8, 0x1, RZ, P3 ;\n"
      "  SEL R9, 0x1, RZ, P4 ;\n"
      "  LDC.64 R10, c[0][0x160] ;\n"
      "  STG.E.32 [R10], R7 ;\n"
      "  STG.E.32 [R10+4], R8 ;\n"
      "  STG.E.32 [R10+8], R9 ;\n"
      "  STG.E.32 [R10+12], R6 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(out + 0, 4).value, 1u);   // ALL(true) = true
  EXPECT_EQ(r.mem().Read(out + 4, 4).value, 0u);   // ALL(lane==3) = false
  EXPECT_EQ(r.mem().Read(out + 8, 4).value, 1u);   // ANY(lane==3) = true
  EXPECT_EQ(r.mem().Read(out + 12, 4).value, 0x8u);  // ballot of lane 3
}

TEST(OpsExecutor, SharedAtomics) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(64);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  MOV32I R2, 0x1 ;\n"
      "  ATOMS.ADD R3, [RZ], R2 ;\n"  // shared offset 0
      "  BAR.SYNC ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
      "  @P0 EXIT ;\n"
      "  LDS R4, [RZ] ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  STG.E.32 [R8], R4 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {64, 1, 1}, /*shared_bytes=*/64);
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(out, 4).value, 64u);
}

TEST(OpsExecutor, AtomicCas) {
  OpsRunner r;
  const DevPtr cell = r.mem().Alloc(16);
  r.mem().Write(cell, 7, 4);
  r.bank().Write64(0x160, cell);
  const LaunchStats stats = r.Run(
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  MOV32I R6, 0x7 ;\n"    // compare
      "  MOV32I R7, 0x63 ;\n"   // value
      "  ATOMG.CAS R3, [R4], R6, R7 ;\n"
      "  MOV32I R8, 0x5 ;\n"    // non-matching compare
      "  MOV32I R9, 0xFF ;\n"
      "  ATOMG.CAS R10, [R4], R8, R9 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {1, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(cell, 4).value, 0x63u);  // first CAS hit, second missed
}

TEST(OpsExecutor, GenericLoadStoreAliasGlobal) {
  OpsRunner r;
  const DevPtr buf = r.mem().Alloc(64);
  r.bank().Write64(0x160, buf);
  const LaunchStats stats = r.Run(
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  MOV32I R6, 0x12345678 ;\n"
      "  ST.E.32 [R4], R6 ;\n"
      "  LD.E.32 R7, [R4] ;\n"
      "  ST.E.32 [R4+4], R7 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {1, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(buf + 4, 4).value, 0x12345678u);
}

TEST(OpsExecutor, BlocksRoundRobinOverSms) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(64 * 4);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  S2R R1, SR_TID.X ;\n"
      "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
      "  @P0 EXIT ;\n"
      "  S2R R2, SR_CTAID.X ;\n"
      "  S2R R3, SR_SMID ;\n"
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  IMAD.WIDE R6, R2, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R3 ;\n"
      "  EXIT ;\n",
      {10, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  for (std::uint32_t block = 0; block < 10; ++block) {
    EXPECT_EQ(r.mem().Read(out + 4 * block, 4).value, block % 8) << "block " << block;
  }
}

TEST(OpsExecutor, KillTerminatesThread) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(16);
  r.mem().Write(out, 0, 4);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  S2R R1, SR_LANEID ;\n"
      "  ISETP.LT.AND P0, PT, R1, 0x10, PT ;\n"
      "  @P0 KILL ;\n"  // lanes 0..15 die
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  MOV32I R6, 0x1 ;\n"
      "  RED.ADD [R4], R6 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {32, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_EQ(r.mem().Read(out, 4).value, 16u);  // only surviving lanes count
}

TEST(OpsExecutor, Cs2rWritesCyclePair) {
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(16);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  CS2R R2, SR_CLOCKLO ;\n"
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  STG.E.64 [R4], R2 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {1, 1, 1});
  ASSERT_EQ(stats.trap, TrapKind::kNone);
  EXPECT_GT(r.mem().Read(out, 8).value, 0u);
  EXPECT_LT(r.mem().Read(out, 8).value, stats.cycles + 1);
}

TEST(OpsExecutor, LocalMemoryWindowLeniency) {
  // A local access beyond the backing store but inside the mapped window
  // reads zeros instead of trapping (real local memory lives in the global
  // address space).
  OpsRunner r;
  const DevPtr out = r.mem().Alloc(16);
  r.bank().Write64(0x160, out);
  const LaunchStats stats = r.Run(
      "  MOV32I R2, 0x8000 ;\n"  // 32 KiB: beyond the 16 KiB allocation
      "  LDL R3, [R2] ;\n"
      "  LDC.64 R4, c[0][0x160] ;\n"
      "  STG.E.32 [R4], R3 ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {1, 1, 1});
  EXPECT_EQ(stats.trap, TrapKind::kNone) << stats.trap_detail;
  EXPECT_EQ(r.mem().Read(out, 4).value, 0u);
}

TEST(OpsExecutor, SharedBeyondWindowTraps) {
  OpsRunner r;
  const LaunchStats stats = r.Run(
      "  MOV32I R2, 0x100000 ;\n"  // 1 MiB: past the 48 KiB shared window
      "  LDS R3, [R2] ;\n"
      "  EXIT ;\n",
      {1, 1, 1}, {1, 1, 1}, /*shared_bytes=*/64);
  EXPECT_EQ(stats.trap, TrapKind::kIllegalAddress);
}

}  // namespace
}  // namespace nvbitfi::sim
