#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "service/socket.h"

namespace nvbitfi::service {
namespace {

TEST(Protocol, BuildersRoundTripThroughParse) {
  std::optional<Message> m = ParseMessage(HelloLine("worker"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "hello");
  EXPECT_EQ(m->role, "worker");

  const std::string spec = "nvbitfi campaign spec v1\nprogram 314.omriq\n";
  m = ParseMessage(SubmitLine(spec, 4, "/tmp/out.jsonl"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "submit");
  EXPECT_EQ(m->spec, spec);  // embedded newlines survive JSON escaping
  EXPECT_EQ(m->shards, 4);
  EXPECT_EQ(m->store, "/tmp/out.jsonl");

  m = ParseMessage(AssignLine(7, spec, 25, 50, "shard.jsonl"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "assign");
  EXPECT_EQ(m->campaign, 7u);
  EXPECT_EQ(m->begin, 25u);
  EXPECT_EQ(m->end, 50u);
  EXPECT_EQ(m->spec, spec);
  EXPECT_EQ(m->store, "shard.jsonl");

  m = ParseMessage(HeartbeatLine(7, 25, 13));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "heartbeat");
  EXPECT_EQ(m->campaign, 7u);
  EXPECT_EQ(m->begin, 25u);
  EXPECT_EQ(m->completed, 13u);

  m = ParseMessage(ShardDoneLine(7, 25, false, "store went away"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "shard_done");
  EXPECT_FALSE(m->ok);
  EXPECT_EQ(m->error, "store went away");

  m = ParseMessage(ProgressLine(7, 99, 200));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->completed, 99u);
  EXPECT_EQ(m->total, 200u);

  m = ParseMessage(ReportLine(7, "=== report ===\nline two\n"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->text, "=== report ===\nline two\n");

  m = ParseMessage(DoneLine(7, true, "merged.jsonl", ""));
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->ok);
  EXPECT_EQ(m->store, "merged.jsonl");

  EXPECT_TRUE(ParseMessage(ErrorLine("nope")).has_value());
  EXPECT_TRUE(ParseMessage(ShutdownLine()).has_value());
}

TEST(Protocol, BuiltLinesAreSingleLines) {
  const std::string spec = "header\nkey value\n";
  for (const std::string& line :
       {SubmitLine(spec, 2, "a.jsonl"), AssignLine(1, spec, 0, 5, "b.jsonl"),
        ReportLine(1, "multi\nline\ntext")}) {
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  }
}

TEST(Protocol, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMessage("").has_value());
  EXPECT_FALSE(ParseMessage("not json").has_value());
  EXPECT_FALSE(ParseMessage("{}").has_value());
  EXPECT_FALSE(ParseMessage("{\"type\":\"warp_drive\"}").has_value());
  EXPECT_FALSE(ParseMessage("[1,2,3]").has_value());
}

TEST(LineBuffer, SplitsOnNewlinesAcrossChunks) {
  LineBuffer buffer;
  EXPECT_FALSE(buffer.PopLine().has_value());

  const std::string part1 = "first li";
  const std::string part2 = "ne\nsecond line\nthird";
  buffer.Append(part1.data(), part1.size());
  EXPECT_FALSE(buffer.PopLine().has_value());
  buffer.Append(part2.data(), part2.size());

  std::optional<std::string> line = buffer.PopLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "first line");
  line = buffer.PopLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "second line");
  EXPECT_FALSE(buffer.PopLine().has_value());  // "third" has no newline yet

  const std::string tail = "\n";
  buffer.Append(tail.data(), tail.size());
  line = buffer.PopLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "third");
}

}  // namespace
}  // namespace nvbitfi::service
