// Shard-store merging: validation, crash/resume, and byte-identity against
// the canonical unsharded store (single-workload fast path; the all-workload
// sweep lives in tests/integration/shard_merge_identity_test.cpp).
#include "analysis/merge.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/shard_runner.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

fi::CampaignSpec SmallSpec() {
  fi::CampaignSpec spec;
  spec.program = workloads::AllWorkloads().front().program->name();
  spec.seed = 20260808;
  spec.num_injections = 6;
  spec.approximate = true;
  return spec;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// One RunCache for the whole suite: golden runs and profiles are computed
// once, which is also how the coordinator shares them across tenants.
fi::RunCache& Cache() {
  static fi::RunCache cache;
  return cache;
}

std::string WriteCanonical(const fi::CampaignSpec& spec, const std::string& name) {
  ShardJob job;
  job.spec = spec;
  job.store_path = TempPath(name);
  job.finalize = true;
  const ShardOutcome outcome = RunShardJob(job, &Cache());
  EXPECT_TRUE(outcome.ok) << outcome.error;
  return job.store_path;
}

std::string WriteShard(const fi::CampaignSpec& spec, std::size_t begin,
                       std::size_t end, const std::string& name) {
  ShardJob job;
  job.spec = spec;
  job.begin = begin;
  job.end = end;
  job.store_path = TempPath(name);
  job.shard_records = true;
  const ShardOutcome outcome = RunShardJob(job, &Cache());
  EXPECT_TRUE(outcome.ok) << outcome.error;
  return job.store_path;
}

TEST(MergeShardStores, MergedStoreIsByteIdenticalToCanonical) {
  const fi::CampaignSpec spec = SmallSpec();
  const std::string canonical = WriteCanonical(spec, "merge_canonical.jsonl");
  const std::vector<std::string> shards = {
      WriteShard(spec, 0, 2, "merge_s0.jsonl"),
      WriteShard(spec, 2, 5, "merge_s1.jsonl"),
      WriteShard(spec, 5, 6, "merge_s2.jsonl"),
  };

  const std::string out = TempPath("merge_out.jsonl");
  std::string error;
  // Shard order on the command line must not matter.
  const std::optional<analysis::MergeSummary> summary = analysis::MergeShardStores(
      {shards[2], shards[0], shards[1]}, out, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_EQ(summary->num_shards, 3u);
  EXPECT_EQ(summary->num_experiments, 6u);
  EXPECT_EQ(summary->meta.program, spec.program);
  EXPECT_TRUE(summary->meta.replay_accounting);

  const std::string merged_bytes = ReadAll(out);
  EXPECT_FALSE(merged_bytes.empty());
  EXPECT_EQ(merged_bytes, ReadAll(canonical));
}

TEST(MergeShardStores, RejectsForeignGappedAndUnshardedStores) {
  const fi::CampaignSpec spec = SmallSpec();
  const std::string s0 = WriteShard(spec, 0, 3, "reject_s0.jsonl");
  const std::string s1 = WriteShard(spec, 3, 6, "reject_s1.jsonl");

  fi::CampaignSpec other = spec;
  other.seed = spec.seed + 1;  // different campaign identity
  const std::string foreign = WriteShard(other, 3, 6, "reject_foreign.jsonl");

  const std::string out = TempPath("reject_out.jsonl");
  std::string error;
  EXPECT_FALSE(analysis::MergeShardStores({s0, foreign}, out, &error).has_value());
  EXPECT_NE(error.find("campaign"), std::string::npos) << error;

  // A gap in the range tiling (missing middle shard).
  const fi::CampaignSpec wide = [&] {
    fi::CampaignSpec w = spec;
    w.num_injections = 9;
    return w;
  }();
  const std::string w0 = WriteShard(wide, 0, 3, "reject_w0.jsonl");
  const std::string w2 = WriteShard(wide, 6, 9, "reject_w2.jsonl");
  EXPECT_FALSE(analysis::MergeShardStores({w0, w2}, out, &error).has_value());

  // A canonical (unsharded) store is not a shard.
  const std::string canonical = WriteCanonical(spec, "reject_canonical.jsonl");
  EXPECT_FALSE(analysis::MergeShardStores({canonical}, out, &error).has_value());

  EXPECT_FALSE(analysis::MergeShardStores({}, out, &error).has_value());
  EXPECT_FALSE(
      analysis::MergeShardStores({"no_such_store.jsonl"}, out, &error).has_value());
}

TEST(MergeShardStores, InterruptedShardIsRejectedUntilResumed) {
  const fi::CampaignSpec spec = SmallSpec();
  const std::string canonical = WriteCanonical(spec, "resume_canonical.jsonl");
  const std::string s0 = WriteShard(spec, 0, 3, "resume_s0.jsonl");

  // Interrupt the second shard after its first completed experiment — the
  // same cut a SIGINT or a heartbeat kick produces.
  ShardJob job;
  job.spec = spec;
  job.begin = 3;
  job.end = 6;
  job.store_path = TempPath("resume_s1.jsonl");
  job.shard_records = true;
  std::atomic<bool> cancel{false};
  job.cancel = &cancel;
  job.on_progress = [&](std::size_t, std::size_t) { cancel.store(true); };
  const ShardOutcome interrupted = RunShardJob(job, &Cache());
  EXPECT_TRUE(interrupted.cancelled);
  EXPECT_LT(interrupted.result.CompletedRuns(), 3u);
  EXPECT_GT(interrupted.result.CompletedRuns(), 0u);

  const std::string out = TempPath("resume_out.jsonl");
  std::string error;
  EXPECT_FALSE(
      analysis::MergeShardStores({s0, job.store_path}, out, &error).has_value());
  EXPECT_NE(error.find("incomplete"), std::string::npos) << error;

  // Resume: the same job without the cancel flag re-runs only the missing
  // indexes and the merge now reproduces the canonical store exactly.
  job.cancel = nullptr;
  job.on_progress = nullptr;
  const ShardOutcome resumed = RunShardJob(job, &Cache());
  EXPECT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.resumed_records, interrupted.result.CompletedRuns());

  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeShardStores({s0, job.store_path}, out, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_EQ(ReadAll(out), ReadAll(canonical));
}

}  // namespace
}  // namespace nvbitfi::service
