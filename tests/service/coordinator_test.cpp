// In-process end-to-end test of the campaign service: a coordinator with
// worker threads, clients submitting over the unix socket, merged stores
// byte-identical to canonical unsharded runs — including two tenants
// campaigning concurrently over the same worker pool.
#include "service/coordinator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/protocol.h"
#include "service/shard_runner.h"
#include "service/socket.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

fi::CampaignSpec SmallSpec(std::uint64_t seed) {
  fi::CampaignSpec spec;
  spec.program = workloads::AllWorkloads().front().program->name();
  spec.seed = seed;
  spec.num_injections = 6;
  spec.approximate = true;
  return spec;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ClientResult {
  bool done_ok = false;
  std::string store;
  std::string report;
  std::string error;
  std::uint64_t progress_messages = 0;
};

// Submits a campaign and drains the server's message stream until `done`.
ClientResult SubmitAndWait(const std::string& socket_path,
                           const fi::CampaignSpec& spec, int shards,
                           const std::string& out_store) {
  ClientResult result;
  std::string error;
  const int fd = ConnectUnix(socket_path, &error);
  if (fd < 0) {
    result.error = error;
    return result;
  }
  SendLine(fd, HelloLine("client"));
  SendLine(fd, SubmitLine(spec.Serialize(), shards, out_store));

  LineBuffer buffer;
  char chunk[4096];
  while (true) {
    const std::optional<std::string> line = buffer.PopLine();
    if (!line.has_value()) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        result.error = "server closed connection";
        break;
      }
      buffer.Append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::optional<Message> message = ParseMessage(*line);
    if (!message.has_value()) continue;
    if (message->type == "progress") {
      ++result.progress_messages;
    } else if (message->type == "report") {
      result.report = message->text;
    } else if (message->type == "error") {
      result.error = message->error;
      break;
    } else if (message->type == "done") {
      result.done_ok = message->ok;
      result.store = message->store;
      result.error = message->error;
      break;
    }
  }
  ::close(fd);
  return result;
}

class CoordinatorTest : public ::testing::Test {
 protected:
  void StartService(int max_campaigns) {
    // A fresh per-test workdir: shard stores are named by campaign id, which
    // restarts at 1 for every coordinator, so stale stores from an earlier
    // run would otherwise collide with (and refuse to resume as) new ones.
    const std::string workdir =
        ::testing::TempDir() + "/coord_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(workdir);
    std::filesystem::create_directories(workdir);
    options_.socket_path = workdir + "/coord.sock";
    options_.workdir = workdir;
    options_.inprocess_workers = 2;
    options_.heartbeat_timeout = 60.0;
    options_.max_campaigns = max_campaigns;
    std::remove(options_.socket_path.c_str());
    coordinator_ = std::make_unique<Coordinator>(options_, &cache_);
    std::string error;
    ASSERT_TRUE(coordinator_->Start(&error)) << error;
    serve_thread_ = std::thread([this] { coordinator_->Serve(); });
  }

  void StopService() {
    if (coordinator_ != nullptr) coordinator_->RequestStop();
    if (serve_thread_.joinable()) serve_thread_.join();
    coordinator_.reset();
  }

  void TearDown() override { StopService(); }

  fi::RunCache cache_;
  CoordinatorOptions options_;
  std::unique_ptr<Coordinator> coordinator_;
  std::thread serve_thread_;
};

TEST_F(CoordinatorTest, ServedCampaignMatchesCanonicalStore) {
  const fi::CampaignSpec spec = SmallSpec(31337);

  ShardJob canonical;
  canonical.spec = spec;
  canonical.store_path = ::testing::TempDir() + "/coord_canonical.jsonl";
  std::remove(canonical.store_path.c_str());
  canonical.finalize = true;
  ASSERT_TRUE(RunShardJob(canonical, &cache_).ok);

  StartService(/*max_campaigns=*/1);
  const std::string out = ::testing::TempDir() + "/coord_served.jsonl";
  std::remove(out.c_str());
  const ClientResult result = SubmitAndWait(options_.socket_path, spec, 3, out);
  serve_thread_.join();  // max_campaigns=1: Serve returns after the merge

  EXPECT_TRUE(result.done_ok) << result.error;
  EXPECT_EQ(result.store, out);
  EXPECT_GT(result.progress_messages, 0u);
  EXPECT_NE(result.report.find("transient campaign report"), std::string::npos);
  EXPECT_NE(result.report.find("checkpoint replay:"), std::string::npos);
  EXPECT_EQ(ReadAll(out), ReadAll(canonical.store_path));
}

TEST_F(CoordinatorTest, ConcurrentTenantsShareTheWorkerPool) {
  const fi::CampaignSpec spec_a = SmallSpec(111);
  const fi::CampaignSpec spec_b = SmallSpec(222);

  auto canonical = [&](const fi::CampaignSpec& spec, const std::string& name) {
    ShardJob job;
    job.spec = spec;
    job.store_path = ::testing::TempDir() + "/" + name;
    std::remove(job.store_path.c_str());
    job.finalize = true;
    EXPECT_TRUE(RunShardJob(job, &cache_).ok);
    return job.store_path;
  };
  const std::string canon_a = canonical(spec_a, "coord_canon_a.jsonl");
  const std::string canon_b = canonical(spec_b, "coord_canon_b.jsonl");

  StartService(/*max_campaigns=*/2);
  const std::string out_a = ::testing::TempDir() + "/coord_tenant_a.jsonl";
  const std::string out_b = ::testing::TempDir() + "/coord_tenant_b.jsonl";
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());

  ClientResult result_a;
  ClientResult result_b;
  std::thread client_a([&] {
    result_a = SubmitAndWait(options_.socket_path, spec_a, 2, out_a);
  });
  std::thread client_b([&] {
    result_b = SubmitAndWait(options_.socket_path, spec_b, 2, out_b);
  });
  client_a.join();
  client_b.join();
  serve_thread_.join();

  EXPECT_TRUE(result_a.done_ok) << result_a.error;
  EXPECT_TRUE(result_b.done_ok) << result_b.error;
  EXPECT_EQ(ReadAll(out_a), ReadAll(canon_a));
  EXPECT_EQ(ReadAll(out_b), ReadAll(canon_b));
}

TEST_F(CoordinatorTest, RejectsUnparseableSpec) {
  StartService(/*max_campaigns=*/0);
  std::string error;
  const int fd = ConnectUnix(options_.socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  SendLine(fd, HelloLine("client"));
  SendLine(fd, SubmitLine("definitely not a campaign spec", 2, ""));

  LineBuffer buffer;
  char chunk[1024];
  std::optional<Message> reply;
  while (!reply.has_value()) {
    const std::optional<std::string> line = buffer.PopLine();
    if (!line.has_value()) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      ASSERT_GT(n, 0) << "server closed without replying";
      buffer.Append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    reply = ParseMessage(*line);
  }
  EXPECT_EQ(reply->type, "error");
  ::close(fd);
}

}  // namespace
}  // namespace nvbitfi::service
