// End-to-end traced campaigns: determinism across worker counts, parity
// with the untraced campaign, result-store round-trip, and the soundness
// acceptance check (a fault the tracer proves fully masked must classify as
// Masked) on real workloads.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "../core/test_program.h"
#include "analysis/propagation.h"
#include "analysis/result_store.h"
#include "core/campaign.h"
#include "trace/taint_tracker.h"
#include "workloads/workloads.h"

namespace nvbitfi::trace {
namespace {

using fi::testing::MiniProgram;

fi::TransientCampaignConfig TracedConfig(std::uint64_t seed, int injections,
                                         int workers = 1) {
  fi::TransientCampaignConfig config;
  config.seed = seed;
  config.num_injections = injections;
  config.num_workers = workers;
  config.trace = true;
  config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
    return std::make_unique<TaintTracker>(params);
  };
  return config;
}

TEST(TraceCampaign, WorkerCountDoesNotChangeResults) {
  // The satellite determinism contract: a traced campaign at 1 worker and at
  // 4 workers yields bit-identical outcomes AND identical propagation
  // records, experiment by experiment.
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  const fi::TransientCampaignResult serial =
      runner.RunTransientCampaign(TracedConfig(11, 24, 1));
  const fi::TransientCampaignResult parallel =
      runner.RunTransientCampaign(TracedConfig(11, 24, 4));

  ASSERT_EQ(serial.injections.size(), parallel.injections.size());
  EXPECT_EQ(serial.counts.sdc, parallel.counts.sdc);
  EXPECT_EQ(serial.counts.due, parallel.counts.due);
  EXPECT_EQ(serial.counts.masked, parallel.counts.masked);
  for (std::size_t i = 0; i < serial.injections.size(); ++i) {
    const fi::InjectionRun& a = serial.injections[i];
    const fi::InjectionRun& b = parallel.injections[i];
    EXPECT_EQ(a.params.Serialize(), b.params.Serialize()) << "experiment " << i;
    EXPECT_EQ(a.classification.outcome, b.classification.outcome) << "experiment " << i;
    EXPECT_EQ(a.classification.symptom, b.classification.symptom) << "experiment " << i;
    EXPECT_EQ(a.artifacts.stdout_text, b.artifacts.stdout_text) << "experiment " << i;
    EXPECT_EQ(a.artifacts.output_file, b.artifacts.output_file) << "experiment " << i;
    ASSERT_TRUE(a.propagation.has_value()) << "experiment " << i;
    ASSERT_TRUE(b.propagation.has_value()) << "experiment " << i;
    EXPECT_TRUE(*a.propagation == *b.propagation) << "experiment " << i;
  }
}

TEST(TraceCampaign, TracingDoesNotChangeOutcomes) {
  // The tracker injects with the plain injector's arming protocol, so the
  // same seed must select the same sites and classify identically with and
  // without tracing (only cycle counts differ, by instrumentation cost).
  const MiniProgram program;
  const fi::CampaignRunner runner(program);

  fi::TransientCampaignConfig untraced;
  untraced.seed = 7;
  untraced.num_injections = 24;
  const fi::TransientCampaignResult plain = runner.RunTransientCampaign(untraced);
  const fi::TransientCampaignResult traced =
      runner.RunTransientCampaign(TracedConfig(7, 24));

  ASSERT_EQ(plain.injections.size(), traced.injections.size());
  for (std::size_t i = 0; i < plain.injections.size(); ++i) {
    const fi::InjectionRun& a = plain.injections[i];
    const fi::InjectionRun& b = traced.injections[i];
    EXPECT_EQ(a.params.Serialize(), b.params.Serialize()) << "experiment " << i;
    EXPECT_EQ(a.record.activated, b.record.activated) << "experiment " << i;
    EXPECT_EQ(a.record.before_bits, b.record.before_bits) << "experiment " << i;
    EXPECT_EQ(a.record.after_bits, b.record.after_bits) << "experiment " << i;
    EXPECT_EQ(a.classification.outcome, b.classification.outcome) << "experiment " << i;
    EXPECT_FALSE(a.propagation.has_value());
    EXPECT_TRUE(b.propagation.has_value());
  }
}

TEST(TraceCampaign, StoreRoundTripPreservesPropagationRecords) {
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  const fi::TransientCampaignConfig config = TracedConfig(3, 12);
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

  const std::string path = ::testing::TempDir() + "trace_store_roundtrip.jsonl";
  std::string error;
  {
    const analysis::StoreMeta meta = analysis::TransientStoreMeta(
        result.program, config, result.golden, result.profiling_run.cycles,
        result.profile);
    EXPECT_TRUE(meta.trace);
    auto store = analysis::ResultStore::Open(path, meta, /*resume=*/false, &error);
    ASSERT_NE(store, nullptr) << error;
    for (std::size_t i = 0; i < result.injections.size(); ++i) {
      store->AppendTransient(i, result.injections[i], nullptr);
    }
  }

  const auto loaded = analysis::LoadResultStore(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->meta.trace);
  ASSERT_EQ(loaded->transient.size(), result.injections.size());
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    const auto it = loaded->transient.find(i);
    ASSERT_NE(it, loaded->transient.end());
    ASSERT_TRUE(it->second.propagation.has_value()) << "experiment " << i;
    EXPECT_TRUE(*it->second.propagation == *result.injections[i].propagation)
        << "experiment " << i;
  }

  // The aggregate rebuilt from the store matches the in-memory one.
  const analysis::PropagationBreakdown direct =
      analysis::BuildTransientPropagation(result);
  const analysis::PropagationBreakdown rebuilt = analysis::RebuildPropagation(*loaded);
  EXPECT_EQ(direct.total_runs, rebuilt.total_runs);
  EXPECT_EQ(direct.campaign.traced_runs, rebuilt.campaign.traced_runs);
  EXPECT_EQ(direct.campaign.fully_masked, rebuilt.campaign.fully_masked);
  EXPECT_EQ(direct.campaign.escaped, rebuilt.campaign.escaped);
  EXPECT_EQ(direct.campaign.overwrite_masks, rebuilt.campaign.overwrite_masks);
  EXPECT_EQ(direct.campaign.absorb_masks, rebuilt.campaign.absorb_masks);
  EXPECT_EQ(direct.consistency_violations, rebuilt.consistency_violations);
  std::remove(path.c_str());
}

// Acceptance criterion: traced campaigns on at least two workloads produce
// propagation records consistent with the outcome classification — no fault
// with live taint in the program output is reported fully masked, i.e. every
// fully_masked record comes from a Masked run.
TEST(TraceCampaign, TaintIsConsistentWithClassificationOnWorkloads) {
  const char* kPrograms[] = {"303.ostencil", "314.omriq"};
  for (const char* name : kPrograms) {
    SCOPED_TRACE(name);
    const fi::TargetProgram* program = workloads::FindWorkload(name);
    ASSERT_NE(program, nullptr);
    const fi::CampaignRunner runner(*program);
    fi::TransientCampaignConfig config = TracedConfig(21, 12);
    config.profiling = fi::ProfilerTool::Mode::kApproximate;
    const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

    std::uint64_t traced = 0;
    for (const fi::InjectionRun& run : result.injections) {
      if (run.trivially_masked) continue;
      ASSERT_TRUE(run.propagation.has_value());
      ++traced;
      if (run.propagation->fully_masked) {
        EXPECT_EQ(run.classification.outcome, fi::Outcome::kMasked)
            << "a provably-dead fault classified as "
            << fi::OutcomeName(run.classification.outcome);
      }
    }
    EXPECT_GT(traced, 0u);

    const analysis::PropagationBreakdown breakdown =
        analysis::BuildTransientPropagation(result);
    EXPECT_EQ(breakdown.consistency_violations, 0u);
    EXPECT_EQ(breakdown.campaign.traced_runs, traced);
    // The report renders without tripping any assertions.
    EXPECT_FALSE(analysis::PropagationReportText(breakdown).empty());
  }
}

}  // namespace
}  // namespace nvbitfi::trace
