#include "trace/taint_tracker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../core/test_program.h"
#include "core/campaign.h"
#include "core/transient_injector.h"

namespace nvbitfi::trace {
namespace {

using fi::testing::MiniProgram;

fi::RunArtifacts RunWith(const fi::TargetProgram& program, nvbit::Tool* tool) {
  const fi::CampaignRunner runner(program);
  return runner.Execute(tool, sim::DeviceProps{}, /*watchdog=*/1 << 20);
}

fi::TransientFaultParams WorkFault(std::uint64_t kernel_count,
                                   std::uint64_t instruction_count,
                                   const std::string& kernel = "work") {
  fi::TransientFaultParams p;
  p.arch_state_id = fi::ArchStateId::kGGp;
  p.bit_flip_model = fi::BitFlipModel::kFlipSingleBit;
  p.kernel_name = kernel;
  p.kernel_count = kernel_count;
  p.instruction_count = instruction_count;
  p.destination_register = 0.0;
  p.bit_pattern_value = 0.99;
  return p;
}

// A one-kernel, one-warp program whose body the test chooses; the first
// kernel parameter (c[0][0x160]) is a 32*8-byte output buffer read back into
// `output_file`.  Used to stage specific masking/propagation shapes the
// MiniProgram doesn't contain.
class TraceProgram final : public fi::TargetProgram {
 public:
  explicit TraceProgram(std::string body) : body_(std::move(body)) {}
  std::string name() const override { return "tracee"; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    const std::string source = ".kernel t\n" + body_ + ".endkernel\n";
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source.c_str(), &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::DevPtr out = 0;
    ctx.MemAlloc(&out, 32 * 8);
    const std::uint64_t params[] = {out};
    ctx.LaunchKernel(ctx.GetFunction("t"), sim::Dim3{1, 1, 1}, sim::Dim3{32, 1, 1},
                     params);
    std::vector<std::uint8_t> bytes(32 * 8);
    ctx.MemcpyDtoH(bytes.data(), out, bytes.size());
    art.output_file.assign(bytes.begin(), bytes.end());
    return art;
  }

 private:
  std::string body_;
};

TEST(TaintTracker, MatchesPlainInjectorSiteAndCorruption) {
  // The tracker must arm, count, and corrupt exactly like the plain injector
  // so a traced campaign hits bit-identical fault sites.
  const MiniProgram program;
  const fi::TransientFaultParams params = WorkFault(1, 64 + 13);  // FADD lane 13

  fi::TransientInjectorTool plain(params);
  RunWith(program, &plain);
  TaintTracker traced(params);
  RunWith(program, &traced);

  const fi::InjectionRecord& a = plain.record();
  const fi::InjectionRecord& b = traced.record();
  EXPECT_EQ(a.activated, b.activated);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.kernel_name, b.kernel_name);
  EXPECT_EQ(a.kernel_count, b.kernel_count);
  EXPECT_EQ(a.static_index, b.static_index);
  EXPECT_EQ(a.lane_id, b.lane_id);
  EXPECT_EQ(a.opcode, b.opcode);
  EXPECT_EQ(a.target_register, b.target_register);
  EXPECT_EQ(a.before_bits, b.before_bits);
  EXPECT_EQ(a.after_bits, b.after_bits);
}

TEST(TaintTracker, CorruptedValueReachesStore) {
  // FADD R2 feeds STG [R6+4]: the taint must reach a store and survive in
  // global memory, so the record can never claim fully masked.
  const MiniProgram program;
  TaintTracker tracker(WorkFault(2, 64));
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_TRUE(rec->reached_store);
  EXPECT_GE(rec->tainted_stores, 1u);
  EXPECT_GT(rec->live_global_bytes, 0u);
  EXPECT_FALSE(rec->fully_masked);
  ASSERT_FALSE(rec->nodes.empty());
  // Node 0 is the injection site.
  EXPECT_EQ(rec->nodes[0].opcode, sim::Opcode::kFADD);
  EXPECT_EQ(rec->nodes[0].static_index, 2u);
}

TEST(TaintTracker, TaintedAddressSetsAddressDivergence) {
  // IMAD.WIDE computes the store address: corrupting its destination taints
  // the address of both STGs.
  const MiniProgram program;
  TaintTracker tracker(WorkFault(0, 150));
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_TRUE(rec->address_divergence);
  EXPECT_FALSE(rec->fully_masked);
}

TEST(TaintTracker, TaintedPredicateSetsControlDivergence) {
  // S2R R0 feeds ISETP -> P0, which guards the @P0 IADD3: tid corruption
  // must surface as control divergence (and address divergence, through the
  // IMAD.WIDE address).
  const MiniProgram program;
  TaintTracker tracker(WorkFault(0, 5));  // S2R lane 5
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_TRUE(rec->control_divergence);
  EXPECT_FALSE(rec->fully_masked);
}

TEST(TaintTracker, OverwriteMasksTheFault) {
  // R3 is corrupted, then unconditionally rewritten from clean sources
  // before the store: the taint dies by overwrite and the fault is provably
  // masked.
  const TraceProgram program(
      "  S2R R0, SR_TID.X ;\n"
      "  IADD3 R3, R0, 5, RZ ;\n"
      "  MOV32I R3, 0x2a ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R6, R0, 0x8, R8 ;\n"
      "  STG.E.32 [R6], R3 ;\n"
      "  EXIT ;\n");
  // G_GP events: S2R(0..31), IADD3(32..63), MOV32I(64..95), ...
  TaintTracker tracker(WorkFault(0, 32, "t"));  // IADD3 lane 0
  const fi::RunArtifacts faulty = RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_EQ(rec->overwrite_masks, 1u);
  EXPECT_EQ(rec->tainted_stores, 0u);
  EXPECT_FALSE(rec->reached_store);
  EXPECT_TRUE(rec->fully_masked);
  ASSERT_EQ(rec->masking_sample.size(), 1u);
  EXPECT_EQ(rec->masking_sample[0].kind, MaskingKind::kOverwrite);
  EXPECT_EQ(rec->masking_sample[0].opcode, sim::Opcode::kMOV32I);

  // Soundness: a fully-masked record must come from a Masked run.
  const fi::RunArtifacts golden = RunWith(program, nullptr);
  EXPECT_EQ(golden.output_file, faulty.output_file);
}

TEST(TaintTracker, AbsorbingOperationMasksTheFault) {
  // AND with the constant 0 provably destroys the tainted bits; the leftover
  // taint in R3 itself is then overwritten.
  const TraceProgram program(
      "  S2R R0, SR_TID.X ;\n"
      "  IADD3 R3, R0, 5, RZ ;\n"
      "  LOP32I.AND R4, R3, 0x0 ;\n"
      "  MOV32I R3, 0x2a ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R6, R0, 0x8, R8 ;\n"
      "  STG.E.32 [R6], R4 ;\n"
      "  EXIT ;\n");
  TaintTracker tracker(WorkFault(0, 32, "t"));  // IADD3 lane 0
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_EQ(rec->absorb_masks, 1u);
  EXPECT_EQ(rec->overwrite_masks, 1u);
  EXPECT_EQ(rec->tainted_stores, 0u);
  EXPECT_TRUE(rec->fully_masked);
}

TEST(TaintTracker, TaintFlowsThroughGlobalMemory) {
  // The corrupted value is stored, loaded back, incremented, and stored
  // again: the shadow memory map must carry the taint across the round trip.
  const TraceProgram program(
      "  S2R R0, SR_TID.X ;\n"
      "  IADD3 R3, R0, 5, RZ ;\n"
      "  LDC.64 R8, c[0][0x160] ;\n"
      "  IMAD.WIDE R6, R0, 0x8, R8 ;\n"
      "  STG.E.32 [R6], R3 ;\n"
      "  LDG.E.32 R5, [R6] ;\n"
      "  IADD3 R5, R5, 1, RZ ;\n"
      "  STG.E.32 [R6+4], R5 ;\n"
      "  EXIT ;\n");
  TaintTracker tracker(WorkFault(0, 32, "t"));  // IADD3 lane 0
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  // Both stores of the corrupted lane carry taint: the direct one and the
  // one fed by the loaded-back value.
  EXPECT_EQ(rec->tainted_stores, 2u);
  EXPECT_GE(rec->live_global_bytes, 8u);
  EXPECT_FALSE(rec->fully_masked);
}

// Two launches over the same output buffer: kernel `t` stores a value the
// fault corrupts, kernel `u` then overwrites every byte with a constant.
// Models the CG-style host loop that reads a reduction result back between
// launches and feeds it into the next launch through constant banks.
class TwoLaunchProgram final : public fi::TargetProgram {
 public:
  std::string name() const override { return "two-launch"; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    static constexpr char kSource[] =
        ".kernel t\n"
        "  S2R R0, SR_TID.X ;\n"
        "  IADD3 R2, R0, 1, RZ ;\n"
        "  LDC.64 R4, c[0][0x160] ;\n"
        "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
        "  STG.E.32 [R6], R2 ;\n"
        "  EXIT ;\n"
        ".endkernel\n"
        ".kernel u\n"
        "  S2R R0, SR_TID.X ;\n"
        "  MOV32I R2, 0x7 ;\n"
        "  LDC.64 R4, c[0][0x160] ;\n"
        "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
        "  STG.E.32 [R6], R2 ;\n"
        "  EXIT ;\n"
        ".endkernel\n";
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(kSource, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::DevPtr out = 0;
    ctx.MemAlloc(&out, 32 * 4);
    const std::uint64_t params[] = {out};
    ctx.LaunchKernel(ctx.GetFunction("t"), sim::Dim3{1, 1, 1},
                     sim::Dim3{32, 1, 1}, params);
    ctx.LaunchKernel(ctx.GetFunction("u"), sim::Dim3{1, 1, 1},
                     sim::Dim3{32, 1, 1}, params);
    std::vector<std::uint8_t> bytes(32 * 4);
    ctx.MemcpyDtoH(bytes.data(), out, bytes.size());
    art.output_file.assign(bytes.begin(), bytes.end());
    return art;
  }
};

TEST(TaintTracker, HostVisibleTaintBlocksMaskingAcrossLaunches) {
  // The tainted store was observable by the host at the first launch
  // boundary; a later clean launch scrubbing the shadow bytes must not let
  // the record claim fully masked.
  const TwoLaunchProgram program;
  TaintTracker tracker(WorkFault(0, 32 + 5, "t"));  // IADD3, lane 5
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  EXPECT_GE(rec->tainted_stores, 1u);
  EXPECT_EQ(rec->live_global_bytes, 0u);
  EXPECT_TRUE(rec->host_visible_taint);
  EXPECT_FALSE(rec->fully_masked);
}

TEST(TaintTracker, GuardSuppressedEventsAreNotCounted) {
  // dynamic_instructions counts guard-true lane events only: the @P0 site
  // contributes 16 events, not 32 (the paper's "instructions that are not
  // executed based on a predicate register are not included").
  const TraceProgram program(
      "  S2R R0, SR_TID.X ;\n"
      "  IADD3 R3, R0, 5, RZ ;\n"
      "  ISETP.GE.AND P0, PT, R0, 0x10, PT ;\n"
      "  @P0 IADD3 R4, R0, 1, RZ ;\n"
      "  MOV32I R3, 0x2a ;\n"
      "  EXIT ;\n");
  TaintTracker tracker(WorkFault(0, 32, "t"));  // IADD3 lane 0
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->injected);
  // Counting starts after the injection (the IADD3 site itself is excluded):
  // ISETP(32) + @P0 IADD3(16) + MOV32I(32) + EXIT(32).
  EXPECT_EQ(rec->dynamic_instructions, 112u);
  EXPECT_TRUE(rec->fully_masked);
}

TEST(TaintTracker, NeverActivatedFaultIsDeadAtDistanceZero) {
  // Instruction count beyond the population: the site is never reached.
  const MiniProgram program;
  TaintTracker tracker(WorkFault(0, 100000));
  RunWith(program, &tracker);

  const auto rec = tracker.TakePropagation();
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->injected);
  EXPECT_TRUE(rec->fully_masked);
  EXPECT_EQ(rec->tainted_instructions, 0u);
  EXPECT_EQ(rec->tainted_stores, 0u);
}

}  // namespace
}  // namespace nvbitfi::trace
