#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.h"

namespace nvbitfi {
namespace {

TEST(Half, KnownEncodings) {
  EXPECT_EQ(FloatToHalfBits(0.0f), 0x0000);
  EXPECT_EQ(FloatToHalfBits(-0.0f), 0x8000);
  EXPECT_EQ(FloatToHalfBits(1.0f), 0x3C00);
  EXPECT_EQ(FloatToHalfBits(-2.0f), 0xC000);
  EXPECT_EQ(FloatToHalfBits(65504.0f), 0x7BFF);  // max finite half
  EXPECT_EQ(FloatToHalfBits(0.5f), 0x3800);
}

TEST(Half, KnownDecodings) {
  EXPECT_FLOAT_EQ(HalfBitsToFloat(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(HalfBitsToFloat(0xC000), -2.0f);
  EXPECT_FLOAT_EQ(HalfBitsToFloat(0x7BFF), 65504.0f);
  EXPECT_FLOAT_EQ(HalfBitsToFloat(0x0001), 0x1.0p-24f);          // smallest subnormal
  EXPECT_FLOAT_EQ(HalfBitsToFloat(0x03FF), 1023.0f * 0x1.0p-24f);  // largest subnormal
}

TEST(Half, InfinityAndNan) {
  EXPECT_EQ(FloatToHalfBits(std::numeric_limits<float>::infinity()), 0x7C00);
  EXPECT_EQ(FloatToHalfBits(-std::numeric_limits<float>::infinity()), 0xFC00);
  EXPECT_TRUE(std::isinf(HalfBitsToFloat(0x7C00)));
  EXPECT_TRUE(std::isnan(HalfBitsToFloat(0x7E00)));
  EXPECT_NE(FloatToHalfBits(std::nanf("")) & 0x3FF, 0);  // NaN stays NaN
}

TEST(Half, OverflowSaturatesToInfinity) {
  EXPECT_EQ(FloatToHalfBits(70000.0f), 0x7C00);
  EXPECT_EQ(FloatToHalfBits(-1e10f), 0xFC00);
}

TEST(Half, UnderflowGoesToSignedZeroOrSubnormal) {
  EXPECT_EQ(FloatToHalfBits(1e-10f), 0x0000);
  EXPECT_EQ(FloatToHalfBits(-1e-10f), 0x8000);
  // 2^-24 is the smallest subnormal.
  EXPECT_EQ(FloatToHalfBits(0x1.0p-24f), 0x0001);
}

TEST(Half, RoundTripExactHalves) {
  // Every finite half value round-trips bit-exactly through float.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if (((h >> 10) & 0x1F) == 0x1F) continue;  // skip Inf/NaN payload cases
    EXPECT_EQ(FloatToHalfBits(HalfBitsToFloat(h)), h) << std::hex << bits;
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10): ties to
  // even -> 1.0.
  EXPECT_EQ(FloatToHalfBits(1.0f + 0x1.0p-11f), 0x3C00);
  // Slightly above the tie rounds up.
  EXPECT_EQ(FloatToHalfBits(1.0f + 0x1.2p-11f), 0x3C01);
}

TEST(Half, PackHelpers) {
  const std::uint32_t packed = PackHalves(0x3C00, 0xC000);  // (1.0, -2.0)
  EXPECT_EQ(HalfLo(packed), 0x3C00);
  EXPECT_EQ(HalfHi(packed), 0xC000);
}

}  // namespace
}  // namespace nvbitfi
