#include "common/bitutil.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nvbitfi {
namespace {

TEST(BitUtil, FloatBitsRoundTrip) {
  const float values[] = {0.0f, -0.0f, 1.0f, -1.5f, 3.14159f, 1e-38f, 1e38f};
  for (const float v : values) {
    EXPECT_EQ(BitsToFloat(FloatToBits(v)), v);
  }
}

TEST(BitUtil, FloatBitsKnownPatterns) {
  EXPECT_EQ(FloatToBits(1.0f), 0x3F800000u);
  EXPECT_EQ(FloatToBits(-2.0f), 0xC0000000u);
  EXPECT_EQ(BitsToFloat(0x40490FDBu), 3.14159274f);
}

TEST(BitUtil, DoubleBitsRoundTrip) {
  const double values[] = {0.0, -0.0, 1.0, -1.5, 2.718281828459045, 1e-300, 1e300};
  for (const double v : values) {
    EXPECT_EQ(BitsToDouble(DoubleToBits(v)), v);
  }
}

TEST(BitUtil, NanBitsPreserved) {
  const std::uint32_t nan_bits = 0x7FC00001u;
  EXPECT_TRUE(std::isnan(BitsToFloat(nan_bits)));
  EXPECT_EQ(FloatToBits(BitsToFloat(nan_bits)), nan_bits);
}

TEST(BitUtil, PackPair) {
  EXPECT_EQ(PackPair(0x89ABCDEFu, 0x01234567u), 0x0123456789ABCDEFull);
  EXPECT_EQ(PairLo(0x0123456789ABCDEFull), 0x89ABCDEFu);
  EXPECT_EQ(PairHi(0x0123456789ABCDEFull), 0x01234567u);
}

TEST(BitUtil, PackPairRoundTripDouble) {
  const double v = -123.456789;
  const std::uint64_t bits = DoubleToBits(v);
  EXPECT_EQ(BitsToDouble(PackPair(PairLo(bits), PairHi(bits))), v);
}

TEST(BitUtil, PopCount) {
  EXPECT_EQ(PopCount32(0), 0);
  EXPECT_EQ(PopCount32(0xFFFFFFFFu), 32);
  EXPECT_EQ(PopCount32(0x80000001u), 2);
  EXPECT_EQ(PopCount32(0x55555555u), 16);
}

TEST(BitUtil, FindLeadingOne) {
  EXPECT_EQ(FindLeadingOne32(0), -1);
  EXPECT_EQ(FindLeadingOne32(1), 0);
  EXPECT_EQ(FindLeadingOne32(0x80000000u), 31);
  EXPECT_EQ(FindLeadingOne32(0x0000F234u), 15);
}

TEST(BitUtil, ReverseBits) {
  EXPECT_EQ(ReverseBits32(0), 0u);
  EXPECT_EQ(ReverseBits32(0x1u), 0x80000000u);
  EXPECT_EQ(ReverseBits32(0x80000000u), 0x1u);
  EXPECT_EQ(ReverseBits32(0xF0F0F0F0u), 0x0F0F0F0Fu);
  // Involution property.
  for (std::uint32_t v : {0x12345678u, 0xDEADBEEFu, 0xFFFF0000u}) {
    EXPECT_EQ(ReverseBits32(ReverseBits32(v)), v);
  }
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(SignExtend32(0xFF, 8), -1);
  EXPECT_EQ(SignExtend32(0x7F, 8), 127);
  EXPECT_EQ(SignExtend32(0x8000, 16), -32768);
  EXPECT_EQ(SignExtend32(0x1234, 16), 0x1234);
  EXPECT_EQ(SignExtend32(0xFFFFFFFFu, 32), -1);
}

TEST(BitUtil, FunnelShiftRight) {
  EXPECT_EQ(FunnelShiftRight(0xFFFFFFFFu, 0x0u, 0), 0xFFFFFFFFu);
  EXPECT_EQ(FunnelShiftRight(0x00000001u, 0x80000000u, 1), 0x00000000u);
  EXPECT_EQ(FunnelShiftRight(0x0u, 0x1u, 1), 0x80000000u);
  EXPECT_EQ(FunnelShiftRight(0x12345678u, 0x9ABCDEF0u, 32), 0x9ABCDEF0u);
  EXPECT_EQ(FunnelShiftRight(0x0u, 0x80000000u, 33), 0x40000000u);
}

TEST(BitUtil, FunnelShiftLeft) {
  EXPECT_EQ(FunnelShiftLeft(0x0u, 0xFFFFFFFFu, 0), 0xFFFFFFFFu);
  EXPECT_EQ(FunnelShiftLeft(0x80000000u, 0x0u, 1), 0x1u);
  EXPECT_EQ(FunnelShiftLeft(0x12345678u, 0x9ABCDEF0u, 32), 0x12345678u);
}

TEST(BitUtil, Lop3TruthTables) {
  const std::uint32_t a = 0xF0F0F0F0u, b = 0xCCCCCCCCu, c = 0xAAAAAAAAu;
  EXPECT_EQ(Lop3(a, b, c, 0xC0), a & b);          // a AND b
  EXPECT_EQ(Lop3(a, b, c, 0xFC), a | b);          // a OR b
  EXPECT_EQ(Lop3(a, b, c, 0x3C), a ^ b);          // a XOR b
  EXPECT_EQ(Lop3(a, b, c, 0x0F), ~a);             // NOT a (independent of b,c)
  EXPECT_EQ(Lop3(a, b, c, 0x80), a & b & c);      // AND3
  EXPECT_EQ(Lop3(a, b, c, 0xFE), a | b | c);      // OR3
  EXPECT_EQ(Lop3(a, b, c, 0x96), a ^ b ^ c);      // XOR3
  EXPECT_EQ(Lop3(a, b, c, 0x00), 0u);
  EXPECT_EQ(Lop3(a, b, c, 0xFF), 0xFFFFFFFFu);
}

TEST(BitUtil, PrmtIdentityAndSwap) {
  const std::uint32_t a = 0x44332211u, b = 0x88776655u;
  EXPECT_EQ(Prmt(a, b, 0x3210), a);               // identity
  EXPECT_EQ(Prmt(a, b, 0x7654), b);               // select b
  EXPECT_EQ(Prmt(a, b, 0x0123), 0x11223344u);     // byte reverse of a
  EXPECT_EQ(Prmt(a, b, 0x5410), 0x66552211u);     // mixed
}

TEST(BitUtil, PrmtSignReplication) {
  // Selector nibble 9 = byte 1 with sign replication; it lands in output
  // byte 0 (the lowest selector nibble).
  const std::uint32_t a = 0x00008000u;  // byte 1 = 0x80 (sign set)
  EXPECT_EQ(Prmt(a, 0, 0x0009) & 0xFFu, 0xFFu);
  const std::uint32_t c = 0x00007F00u;  // byte 1 = 0x7F (sign clear)
  EXPECT_EQ(Prmt(c, 0, 0x0009) & 0xFFu, 0u);
}

}  // namespace
}  // namespace nvbitfi
