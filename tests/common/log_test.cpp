#include "common/log.h"

#include <gtest/gtest.h>

namespace nvbitfi {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelSuppressesDebugAndInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  // The macros must compile and not crash at any level.
  LOG_DEBUG << "hidden " << 1;
  LOG_INFO << "hidden " << 2;
  LOG_WARN << "shown " << 3;
}

TEST(Log, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning), static_cast<int>(LogLevel::kError));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                               LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(Log, SideEffectsOnlyEvaluateWhenEnabled) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  LOG_DEBUG << count();  // suppressed: the stream expression must not run
  EXPECT_EQ(evaluations, 0);
  LOG_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace nvbitfi
