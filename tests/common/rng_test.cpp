#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace nvbitfi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Bits32(), b.Bits32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Bits32() != b.Bits32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Rng, UniformUnitStaysInHalfOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformUnit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformUnitCoversTheRange) {
  Rng rng(11);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformUnit();
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInvertedBoundsThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(10, 9), std::logic_error);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The child must not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.Bits32() == child.Bits32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.Bits32(), fb.Bits32());
  }
}

TEST(Rng, SeedFromIsStable) {
  EXPECT_EQ(Rng::SeedFrom(1, "350.md"), Rng::SeedFrom(1, "350.md"));
  EXPECT_NE(Rng::SeedFrom(1, "350.md"), Rng::SeedFrom(2, "350.md"));
  EXPECT_NE(Rng::SeedFrom(1, "350.md"), Rng::SeedFrom(1, "351.palm"));
  EXPECT_NE(Rng::SeedFrom(1, ""), Rng::SeedFrom(1, "a"));
}

}  // namespace
}  // namespace nvbitfi
