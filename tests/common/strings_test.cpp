#include "common/strings.h"

#include <gtest/gtest.h>

namespace nvbitfi {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = Split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("\ta b\n"), "a b");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(Strings, ParseUint64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("0x1F", &v));
  EXPECT_EQ(v, 31u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(Strings, ParseUint64Rejects) {
  std::uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64(" 12", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));
}

TEST(Strings, ParseInt64) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("0x10", &v));
  EXPECT_EQ(v, 16);
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(Strings, Format) {
  EXPECT_EQ(Format("x=%d", 42), "x=42");
  EXPECT_EQ(Format("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Format("empty"), "empty");
}

}  // namespace
}  // namespace nvbitfi
