#include "core/run_cache.h"

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

TEST(RunCache, GoldenComputedOncePerKey) {
  const MiniProgram program;
  RunCache cache;
  const CampaignRunner runner(program, &cache);
  const RunArtifacts a = runner.Golden(sim::DeviceProps{});
  const RunArtifacts b = runner.Golden(sim::DeviceProps{});
  EXPECT_EQ(cache.golden_runs(), 1u);
  EXPECT_EQ(a.stdout_text, b.stdout_text);
  EXPECT_EQ(a.cycles, b.cycles);

  // A different device configuration is a different key.
  sim::DeviceProps other;
  other.num_sms = 4;
  runner.Golden(other);
  EXPECT_EQ(cache.golden_runs(), 2u);
}

TEST(RunCache, StreamlessGoldenEntryUpgradedByCheckpointedRequest) {
  const MiniProgram program;
  RunCache cache;
  const CampaignRunner runner(program, &cache);

  // Golden() seeds a stream-less entry; GoldenCheckpointed() must not serve
  // it (no stream to replay from) — it recomputes and upgrades the entry.
  const RunArtifacts plain = runner.Golden(sim::DeviceProps{});
  EXPECT_EQ(cache.golden_runs(), 1u);
  const RunCache::GoldenEntry entry = runner.GoldenCheckpointed(sim::DeviceProps{});
  EXPECT_EQ(cache.golden_runs(), 2u);
  ASSERT_NE(entry.checkpoints, nullptr);
  EXPECT_FALSE(entry.checkpoints->empty());
  EXPECT_EQ(entry.run.cycles, plain.cycles);

  // Both request flavours now hit the upgraded entry.
  const RunCache::GoldenEntry again = runner.GoldenCheckpointed(sim::DeviceProps{});
  EXPECT_EQ(cache.golden_runs(), 2u);
  EXPECT_EQ(again.checkpoints.get(), entry.checkpoints.get());
  runner.Golden(sim::DeviceProps{});
  EXPECT_EQ(cache.golden_runs(), 2u);
}

TEST(RunCache, ProfileKeyedByMode) {
  const MiniProgram program;
  RunCache cache;
  const CampaignRunner runner(program, &cache);
  RunArtifacts exact_run, approx_run;
  const ProgramProfile exact =
      runner.Profile(ProfilerTool::Mode::kExact, sim::DeviceProps{}, &exact_run);
  runner.Profile(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  EXPECT_EQ(cache.profile_runs(), 1u);
  const ProgramProfile approx =
      runner.Profile(ProfilerTool::Mode::kApproximate, sim::DeviceProps{}, &approx_run);
  EXPECT_EQ(cache.profile_runs(), 2u);
  EXPECT_FALSE(exact.approximate);
  EXPECT_TRUE(approx.approximate);
  EXPECT_GT(exact_run.cycles, 0u);
  EXPECT_GT(approx_run.cycles, 0u);
}

TEST(RunCache, CampaignVariantsShareGoldenAndProfile) {
  const MiniProgram program;
  RunCache cache;
  const CampaignRunner runner(program, &cache);
  TransientCampaignConfig config;
  config.seed = 11;
  config.num_injections = 4;

  const TransientCampaignResult first = runner.RunTransientCampaign(config);
  config.seed = 12;  // a different campaign variant, same (program, device, mode)
  const TransientCampaignResult second = runner.RunTransientCampaign(config);

  EXPECT_EQ(cache.golden_runs(), 1u);
  EXPECT_EQ(cache.profile_runs(), 1u);
  // Both campaigns saw the same cached golden/profiling state.
  EXPECT_EQ(first.golden.cycles, second.golden.cycles);
  EXPECT_EQ(first.profiling_run.cycles, second.profiling_run.cycles);
}

TEST(RunCache, CachedCampaignMatchesUncached) {
  const MiniProgram program;
  RunCache cache;
  TransientCampaignConfig config;
  config.seed = 23;
  config.num_injections = 8;
  const TransientCampaignResult cached =
      CampaignRunner(program, &cache).RunTransientCampaign(config);
  const TransientCampaignResult plain =
      CampaignRunner(program).RunTransientCampaign(config);
  ASSERT_EQ(cached.injections.size(), plain.injections.size());
  for (std::size_t i = 0; i < cached.injections.size(); ++i) {
    EXPECT_EQ(cached.injections[i].params, plain.injections[i].params);
    EXPECT_EQ(cached.injections[i].classification, plain.injections[i].classification);
  }
}

TEST(RunCache, PutProfilePreemptsComputation) {
  const MiniProgram program;
  RunCache cache;
  RunCache::ProfileEntry entry;
  entry.profile.program_name = "mini";
  entry.profile.approximate = false;
  cache.PutProfile("mini", ProfilerTool::Mode::kExact, sim::DeviceProps{},
                   entry);
  const CampaignRunner runner(program, &cache);
  const ProgramProfile profile =
      runner.Profile(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  EXPECT_EQ(cache.profile_runs(), 0u);  // served from the pre-seeded entry
  EXPECT_TRUE(profile.kernels.empty());
}

TEST(RunCache, DeviceCacheKeyReflectsProps) {
  sim::DeviceProps a, b;
  b.num_sms = a.num_sms + 1;
  EXPECT_NE(DeviceCacheKey(a), DeviceCacheKey(b));
  EXPECT_EQ(DeviceCacheKey(a), DeviceCacheKey(sim::DeviceProps{}));
}

TEST(RunCache, DeviceCacheKeyResistsDelimiterCollisions) {
  // Under naive '/'-joined keys these two configurations collide:
  // "x/1" + 1 SM + isa "v"  vs  "x" + 11 SMs + isa "v" would both render
  // pieces that concatenate ambiguously.  Length-prefixed fragments keep
  // every such pair distinct.
  sim::DeviceProps a, b;
  a.name = "x/1";
  a.num_sms = 1;
  a.lanes_per_sm = 32;
  a.isa = "v";
  b.name = "x";
  b.num_sms = 11;
  b.lanes_per_sm = 32;
  b.isa = "v";
  EXPECT_NE(DeviceCacheKey(a), DeviceCacheKey(b));

  // The ISA side: a name ending in the separator vs an ISA starting with it.
  sim::DeviceProps c, d;
  c.name = "gpu";
  c.isa = "32/v";
  d.name = "gpu";
  d.num_sms = c.num_sms;
  d.lanes_per_sm = 3;
  d.isa = "2/v";
  // Not constructible as an exact collision any more, but assert the keys
  // stay distinct even when one free-text field absorbs the other's prefix.
  EXPECT_NE(DeviceCacheKey(c), DeviceCacheKey(d));
}

TEST(RunCache, GoldenKeysSeparateProgramFromDeviceName) {
  // A program name that swallows the separator and part of the device name
  // must not alias a different (program, device) pair.
  // Under the old program + "|" + name scheme, ("p|g", name "x") and
  // ("p", name "g|x") produced the same key.
  RunCache cache;
  sim::DeviceProps a, b;
  a.name = "x";
  b.name = "g|x";
  int calls = 0;
  const auto compute = [&calls] {
    ++calls;
    return RunArtifacts{};
  };
  cache.Golden("p|g", a, compute);
  cache.Golden("p", b, compute);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.golden_runs(), 2u);
}

}  // namespace
}  // namespace nvbitfi::fi
