#include "core/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nvbitfi::fi {
namespace {

TEST(Statistics, ZScoresMatchTables) {
  EXPECT_NEAR(ZScore(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(ZScore(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(ZScore(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(ZScore(0.6827), 1.0, 1e-3);  // one sigma
}

TEST(Statistics, PaperCampaignSizingClaims) {
  // §IV-B: "100 injections provide results with 90% confidence intervals and
  // ±8% error margins".
  EXPECT_NEAR(WorstCaseMarginOfError(100, 0.90), 0.08, 0.003);
  // "1000 injections are necessary to obtain results with 95% confidence
  // intervals and ±3% error margins".
  EXPECT_NEAR(WorstCaseMarginOfError(1000, 0.95), 0.03, 0.002);
  EXPECT_LE(InjectionsForMargin(0.031, 0.95), 1000u);
  EXPECT_GT(InjectionsForMargin(0.03, 0.95), 1000u);
}

TEST(Statistics, MarginShrinksWithSamples) {
  double previous = 1.0;
  for (const std::uint64_t n : {10u, 100u, 1000u, 10000u}) {
    const double margin = WorstCaseMarginOfError(n, 0.95);
    EXPECT_LT(margin, previous);
    previous = margin;
  }
}

TEST(Statistics, InjectionsForMarginInvertsTheMargin) {
  for (const double margin : {0.10, 0.05, 0.02}) {
    const std::uint64_t n = InjectionsForMargin(margin, 0.90);
    EXPECT_LE(WorstCaseMarginOfError(n, 0.90), margin + 1e-9);
    EXPECT_GT(WorstCaseMarginOfError(n - 1, 0.90), margin);
  }
}

TEST(Statistics, ProportionEstimate) {
  const ProportionEstimate e = EstimateProportion(30, 100, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 0.30);
  EXPECT_NEAR(e.margin, 1.96 * std::sqrt(0.3 * 0.7 / 100.0), 1e-3);
  EXPECT_NEAR(e.lower, 0.30 - e.margin, 1e-12);
  EXPECT_NEAR(e.upper, 0.30 + e.margin, 1e-12);
}

TEST(Statistics, ProportionEstimateClampsToUnitInterval) {
  const ProportionEstimate low = EstimateProportion(0, 10, 0.95);
  EXPECT_DOUBLE_EQ(low.lower, 0.0);
  const ProportionEstimate high = EstimateProportion(10, 10, 0.95);
  EXPECT_DOUBLE_EQ(high.upper, 1.0);
}

TEST(Statistics, ZeroSamplesYieldEmptyEstimate) {
  const ProportionEstimate e = EstimateProportion(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.margin, 0.0);
}

TEST(Statistics, OutcomeEstimates) {
  OutcomeCounts counts;
  counts.sdc = 32;
  counts.due = 4;
  counts.masked = 64;
  const OutcomeEstimates estimates = EstimateOutcomes(counts, 0.90);
  EXPECT_NEAR(estimates.sdc.value, 0.32, 1e-9);
  EXPECT_NEAR(estimates.due.value, 0.04, 1e-9);
  EXPECT_NEAR(estimates.masked.value, 0.64, 1e-9);
  EXPECT_GT(estimates.sdc.margin, estimates.due.margin);  // p closer to 0.5
}

TEST(Statistics, InvalidArgumentsThrow) {
  EXPECT_THROW(ZScore(0.0), std::logic_error);
  EXPECT_THROW(ZScore(1.0), std::logic_error);
  EXPECT_THROW(WorstCaseMarginOfError(0, 0.9), std::logic_error);
  EXPECT_THROW(InjectionsForMargin(0.0, 0.9), std::logic_error);
}

}  // namespace
}  // namespace nvbitfi::fi
