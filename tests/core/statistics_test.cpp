#include "core/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nvbitfi::fi {
namespace {

TEST(Statistics, ZScoresMatchTables) {
  EXPECT_NEAR(ZScore(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(ZScore(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(ZScore(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(ZScore(0.6827), 1.0, 1e-3);  // one sigma
}

TEST(Statistics, PaperCampaignSizingClaims) {
  // §IV-B: "100 injections provide results with 90% confidence intervals and
  // ±8% error margins".
  EXPECT_NEAR(WorstCaseMarginOfError(100, 0.90), 0.08, 0.003);
  // "1000 injections are necessary to obtain results with 95% confidence
  // intervals and ±3% error margins".
  EXPECT_NEAR(WorstCaseMarginOfError(1000, 0.95), 0.03, 0.002);
  EXPECT_LE(InjectionsForMargin(0.031, 0.95), 1000u);
  EXPECT_GT(InjectionsForMargin(0.03, 0.95), 1000u);
}

TEST(Statistics, MarginShrinksWithSamples) {
  double previous = 1.0;
  for (const std::uint64_t n : {10u, 100u, 1000u, 10000u}) {
    const double margin = WorstCaseMarginOfError(n, 0.95);
    EXPECT_LT(margin, previous);
    previous = margin;
  }
}

TEST(Statistics, InjectionsForMarginInvertsTheMargin) {
  for (const double margin : {0.10, 0.05, 0.02}) {
    const std::uint64_t n = InjectionsForMargin(margin, 0.90);
    EXPECT_LE(WorstCaseMarginOfError(n, 0.90), margin + 1e-9);
    EXPECT_GT(WorstCaseMarginOfError(n - 1, 0.90), margin);
  }
}

TEST(Statistics, NormalApproxProportionEstimate) {
  const ProportionEstimate e =
      EstimateProportion(30, 100, 0.95, IntervalMethod::kNormalApprox);
  EXPECT_DOUBLE_EQ(e.value, 0.30);
  EXPECT_NEAR(e.margin, 1.96 * std::sqrt(0.3 * 0.7 / 100.0), 1e-3);
  EXPECT_NEAR(e.lower, 0.30 - e.margin, 1e-12);
  EXPECT_NEAR(e.upper, 0.30 + e.margin, 1e-12);
}

TEST(Statistics, WilsonIsTheDefaultAndMatchesClosedForm) {
  // Wilson at z = 1.96, 30/100: center (p + z²/2n)/(1 + z²/n), half-width
  // (z/(1 + z²/n))·sqrt(p(1-p)/n + z²/4n²).
  const ProportionEstimate e = EstimateProportion(30, 100, 0.95);
  const double z = ZScore(0.95);
  const double denom = 1.0 + z * z / 100.0;
  const double center = (0.30 + z * z / 200.0) / denom;
  const double half =
      (z / denom) * std::sqrt(0.3 * 0.7 / 100.0 + z * z / (4.0 * 100.0 * 100.0));
  EXPECT_DOUBLE_EQ(e.value, 0.30);
  EXPECT_NEAR(e.margin, half, 1e-12);
  EXPECT_NEAR(e.lower, center - half, 1e-12);
  EXPECT_NEAR(e.upper, center + half, 1e-12);
}

TEST(Statistics, WilsonStaysInformativeAtTheBoundaries) {
  // Zero successes: the Wald interval collapses to width 0 — exactly wrong
  // for rare-SDC strata.  Wilson keeps a nonzero upper bound ≈ z²/(n + z²).
  const ProportionEstimate none = EstimateProportion(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(none.value, 0.0);
  EXPECT_DOUBLE_EQ(none.lower, 0.0);
  const double z = ZScore(0.95);
  EXPECT_NEAR(none.upper, z * z / (20.0 + z * z), 1e-12);
  EXPECT_GT(none.upper, 0.1);

  const ProportionEstimate all = EstimateProportion(20, 20, 0.95);
  EXPECT_DOUBLE_EQ(all.value, 1.0);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  EXPECT_NEAR(all.lower, 1.0 - z * z / (20.0 + z * z), 1e-12);
  EXPECT_LT(all.lower, 0.9);

  // The normal form really does degenerate there (modulo the 1e-12 floor).
  const ProportionEstimate wald =
      EstimateProportion(0, 20, 0.95, IntervalMethod::kNormalApprox);
  EXPECT_LT(wald.upper, 1e-5);
}

TEST(Statistics, WilsonSmallSampleIntervalCoversTruth) {
  // 1 success in 5 trials from a true p = 0.3 coin: the Wilson interval at
  // 95% must cover 0.3 and stay inside [0, 1] despite n = 5.
  const ProportionEstimate e = EstimateProportion(1, 5, 0.95);
  EXPECT_LT(e.lower, 0.3);
  EXPECT_GT(e.upper, 0.3);
  EXPECT_GE(e.lower, 0.0);
  EXPECT_LE(e.upper, 1.0);
  // Midpoint shrinkage: the interval center sits above the raw 0.2.
  EXPECT_GT(0.5 * (e.lower + e.upper), e.value);
}

TEST(Statistics, WilsonWidthShrinksWithSamples) {
  double previous = 1.0;
  for (const std::uint64_t n : {5u, 50u, 500u, 5000u}) {
    const ProportionEstimate e = EstimateProportion(n / 5, n, 0.95);
    EXPECT_LT(e.upper - e.lower, previous);
    previous = e.upper - e.lower;
  }
}

TEST(Statistics, ProportionEstimateClampsToUnitInterval) {
  for (const IntervalMethod method :
       {IntervalMethod::kWilson, IntervalMethod::kNormalApprox}) {
    const ProportionEstimate low = EstimateProportion(0, 10, 0.95, method);
    EXPECT_DOUBLE_EQ(low.lower, 0.0);
    const ProportionEstimate high = EstimateProportion(10, 10, 0.95, method);
    EXPECT_DOUBLE_EQ(high.upper, 1.0);
  }
}

TEST(Statistics, ZeroSamplesYieldEmptyEstimate) {
  const ProportionEstimate e = EstimateProportion(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.margin, 0.0);
}

TEST(Statistics, OutcomeEstimates) {
  OutcomeCounts counts;
  counts.sdc = 32;
  counts.due = 4;
  counts.masked = 64;
  const OutcomeEstimates estimates = EstimateOutcomes(counts, 0.90);
  EXPECT_NEAR(estimates.sdc.value, 0.32, 1e-9);
  EXPECT_NEAR(estimates.due.value, 0.04, 1e-9);
  EXPECT_NEAR(estimates.masked.value, 0.64, 1e-9);
  EXPECT_GT(estimates.sdc.margin, estimates.due.margin);  // p closer to 0.5
}

TEST(Statistics, InvalidArgumentsThrow) {
  EXPECT_THROW(ZScore(0.0), std::logic_error);
  EXPECT_THROW(ZScore(1.0), std::logic_error);
  EXPECT_THROW(WorstCaseMarginOfError(0, 0.9), std::logic_error);
  EXPECT_THROW(InjectionsForMargin(0.0, 0.9), std::logic_error);
  EXPECT_THROW(EstimateProportion(11, 10, 0.9), std::logic_error);
}

}  // namespace
}  // namespace nvbitfi::fi
