#include "core/pruning.h"

#include <gtest/gtest.h>

#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

ProgramProfile MiniProfile() {
  const MiniProgram program;
  const CampaignRunner runner(program);
  return runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
}

TEST(Pruning, SitesCoverEveryClassOnce) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(1);
  PruningConfig config;
  const std::vector<PrunedSite> sites = BuildPrunedSites(profile, config, rng);

  // Classes are (static kernel, opcode): work executes {S2R, IADD3, FADD,
  // LDC, IMAD} and tail {S2R, LDC, MOV32I} in G_GP — the three work
  // instances collapse into one class each.
  std::set<std::string> classes;
  double weight_sum = 0.0;
  for (const PrunedSite& site : sites) {
    classes.insert(site.kernel_name + "/" + std::string(sim::OpcodeName(site.opcode)));
    weight_sum += site.weight;
    EXPECT_TRUE(OpcodeInGroup(site.opcode, ArchStateId::kGGp));
    EXPECT_GT(site.weight, 0.0);
    EXPECT_TRUE(site.kernel_name == "work" || site.kernel_name == "tail");
  }
  EXPECT_EQ(classes.size(), sites.size());  // one representative each
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_EQ(sites.size(), 8u);  // 5 work classes + 3 tail classes
}

TEST(Pruning, RepresentativesPerClassMultiplySites) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(1);
  PruningConfig one;
  PruningConfig three;
  three.representatives_per_class = 3;
  Rng rng2(1);
  const auto sites1 = BuildPrunedSites(profile, one, rng);
  const auto sites3 = BuildPrunedSites(profile, three, rng2);
  EXPECT_EQ(sites3.size(), 3 * sites1.size());
  double weight_sum = 0.0;
  for (const PrunedSite& site : sites3) weight_sum += site.weight;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(Pruning, MinShareDropsSmallClassesAndRenormalises) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(1), rng_full(1);
  PruningConfig config;
  config.min_class_share = 0.01;  // drops tail's 1-instruction classes
  const auto sites = BuildPrunedSites(profile, config, rng);
  const auto full = BuildPrunedSites(profile, PruningConfig{}, rng_full);
  EXPECT_LT(sites.size(), full.size());
  double weight_sum = 0.0;
  for (const PrunedSite& site : sites) {
    // tail's single-execution LDC and MOV32I classes are pruned.
    EXPECT_FALSE(site.kernel_name == "tail" && site.opcode == sim::Opcode::kMOV32I);
    EXPECT_FALSE(site.kernel_name == "tail" && site.opcode == sim::Opcode::kLDC);
    weight_sum += site.weight;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(Pruning, SiteIndicesStayInsideTheClass) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(7);
  PruningConfig config;
  config.representatives_per_class = 4;
  const auto sites = BuildPrunedSites(profile, config, rng);
  for (const PrunedSite& site : sites) {
    // Find the class population and check the index bound.
    for (const KernelProfile& k : profile.kernels) {
      if (k.kernel_name == site.kernel_name && k.kernel_count == site.kernel_count) {
        const std::uint64_t count =
            k.opcode_counts[static_cast<std::size_t>(site.opcode)];
        EXPECT_LT(site.params.instruction_count, count);
      }
    }
  }
}

TEST(Pruning, CampaignRunsOnePerSiteAndInjectsTheRightOpcode) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile = MiniProfile();
  Rng rng(3);
  PruningConfig config;
  const PrunedCampaignResult result =
      RunPrunedCampaign(runner, program, profile, config, rng);
  EXPECT_EQ(result.total_runs, result.sites.size());
  EXPECT_EQ(result.classifications.size(), result.sites.size());
  EXPECT_NEAR(result.weighted.total(), 1.0, 1e-9);
}

TEST(Pruning, DeterministicForSameSeed) {
  const ProgramProfile profile = MiniProfile();
  Rng a(9), b(9);
  PruningConfig config;
  const auto sites_a = BuildPrunedSites(profile, config, a);
  const auto sites_b = BuildPrunedSites(profile, config, b);
  ASSERT_EQ(sites_a.size(), sites_b.size());
  for (std::size_t i = 0; i < sites_a.size(); ++i) {
    EXPECT_EQ(sites_a[i].params, sites_b[i].params);
  }
}

TEST(Pruning, ClassPopulationsPartitionTheGroupPopulation) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(1);
  PruningConfig config;
  const auto sites = BuildPrunedSites(profile, config, rng);

  // Recover each class's population from the profile; together the classes
  // must account for every dynamic instruction in the group, exactly once.
  std::uint64_t classes_total = 0;
  for (const PrunedSite& site : sites) {
    std::uint64_t class_population = 0;
    for (const KernelProfile& k : profile.kernels) {
      if (k.kernel_name == site.kernel_name) {
        class_population += k.opcode_counts[static_cast<std::size_t>(site.opcode)];
      }
    }
    EXPECT_GT(class_population, 0u);
    classes_total += class_population;
  }
  EXPECT_EQ(classes_total, profile.GroupTotal(ArchStateId::kGGp));
}

TEST(Pruning, WeightsAreExactPopulationShares) {
  const ProgramProfile profile = MiniProfile();
  Rng rng(1);
  PruningConfig config;
  config.representatives_per_class = 2;
  const auto sites = BuildPrunedSites(profile, config, rng);
  const double group_total =
      static_cast<double>(profile.GroupTotal(ArchStateId::kGGp));

  for (const PrunedSite& site : sites) {
    std::uint64_t class_population = 0;
    for (const KernelProfile& k : profile.kernels) {
      if (k.kernel_name == site.kernel_name) {
        class_population += k.opcode_counts[static_cast<std::size_t>(site.opcode)];
      }
    }
    // Each of the N representatives carries share/N.
    const double share = static_cast<double>(class_population) / group_total;
    EXPECT_DOUBLE_EQ(site.weight,
                     share / config.representatives_per_class)
        << site.kernel_name << "/" << sim::OpcodeName(site.opcode);
  }
}

TEST(Pruning, PrunedAndUnprunedCampaignsAgreeOnWeightedTotals) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile = MiniProfile();

  // Pruned estimate: several representatives per class for stability.
  Rng rng(2021);
  PruningConfig config;
  config.representatives_per_class = 6;
  const PrunedCampaignResult pruned =
      RunPrunedCampaign(runner, program, profile, config, rng);
  EXPECT_NEAR(pruned.weighted.total(), 1.0, 1e-9);

  // Unpruned reference: a plain uniform campaign over the same group.
  TransientCampaignConfig full;
  full.seed = 2021;
  full.num_injections = 120;
  full.randomize_flip_model = false;
  const TransientCampaignResult uniform = runner.RunTransientCampaign(full);
  const double n = static_cast<double>(uniform.counts.total());
  const double uniform_sdc = static_cast<double>(uniform.counts.sdc) / n;
  const double uniform_masked = static_cast<double>(uniform.counts.masked) / n;

  // Both are estimates of the same population proportions; with these seeds
  // the agreement is deterministic, and the tolerance is the generous bound
  // sampling noise at these run counts allows.
  EXPECT_NEAR(pruned.weighted.sdc / pruned.weighted.total(), uniform_sdc, 0.25);
  EXPECT_NEAR(pruned.weighted.masked / pruned.weighted.total(), uniform_masked,
              0.25);
}

}  // namespace
}  // namespace nvbitfi::fi
