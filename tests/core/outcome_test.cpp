#include "core/outcome.h"

#include <gtest/gtest.h>

#include <limits>
#include <span>

#include "workloads/common.h"

namespace nvbitfi::fi {
namespace {

RunArtifacts CleanRun() {
  RunArtifacts art;
  art.stdout_text = "result 1.234\n";
  art.output_file = {1, 2, 3, 4};
  return art;
}

const SdcChecker& Exact() {
  static const SdcChecker checker;
  return checker;
}

TEST(Outcome, IdenticalRunsAreMasked) {
  const RunArtifacts golden = CleanRun();
  const Classification c = Classify(golden, CleanRun(), Exact());
  EXPECT_EQ(c.outcome, Outcome::kMasked);
  EXPECT_EQ(c.symptom, Symptom::kNone);
  EXPECT_FALSE(c.potential_due);
}

TEST(Outcome, StdoutDiffIsSdc) {
  RunArtifacts run = CleanRun();
  run.stdout_text = "result 9.999\n";
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kSdc);
  EXPECT_EQ(c.symptom, Symptom::kStdoutDiff);
}

TEST(Outcome, OutputFileDiffIsSdc) {
  RunArtifacts run = CleanRun();
  run.output_file[2] = 99;
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kSdc);
  EXPECT_EQ(c.symptom, Symptom::kOutputFileDiff);
}

TEST(Outcome, AppCheckFailureIsSdc) {
  RunArtifacts run = CleanRun();
  run.app_check_failed = true;
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kSdc);
  EXPECT_EQ(c.symptom, Symptom::kAppCheckFailed);
}

TEST(Outcome, DueSymptoms) {
  RunArtifacts timeout = CleanRun();
  timeout.timed_out = true;
  EXPECT_EQ(Classify(CleanRun(), timeout, Exact()).symptom, Symptom::kTimeout);

  RunArtifacts crash = CleanRun();
  crash.crashed = true;
  EXPECT_EQ(Classify(CleanRun(), crash, Exact()).symptom, Symptom::kCrash);

  RunArtifacts exit_code = CleanRun();
  exit_code.exit_code = 1;
  EXPECT_EQ(Classify(CleanRun(), exit_code, Exact()).symptom, Symptom::kNonZeroExit);
}

TEST(Outcome, DueTakesPrecedenceOverSdc) {
  RunArtifacts run = CleanRun();
  run.stdout_text = "garbage";
  run.timed_out = true;
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kDue);
  EXPECT_EQ(c.symptom, Symptom::kTimeout);
}

TEST(Outcome, PrecedenceAmongDueSymptoms) {
  RunArtifacts run = CleanRun();
  run.timed_out = true;
  run.crashed = true;
  run.exit_code = 3;
  EXPECT_EQ(Classify(CleanRun(), run, Exact()).symptom, Symptom::kTimeout);
  run.timed_out = false;
  EXPECT_EQ(Classify(CleanRun(), run, Exact()).symptom, Symptom::kCrash);
}

TEST(Outcome, PotentialDueFromCudaError) {
  RunArtifacts run = CleanRun();
  run.cuda_errors.push_back("CUDA_ERROR_ILLEGAL_ADDRESS");
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kMasked);  // output identical
  EXPECT_TRUE(c.potential_due);
}

TEST(Outcome, PotentialDueFromDmesg) {
  RunArtifacts run = CleanRun();
  run.stdout_text = "corrupted";
  run.dmesg.push_back("XID 13: ...");
  const Classification c = Classify(CleanRun(), run, Exact());
  EXPECT_EQ(c.outcome, Outcome::kSdc);
  EXPECT_TRUE(c.potential_due);
}

TEST(Outcome, ToleranceCheckerAcceptsSmallFloatDrift) {
  const float golden_values[] = {1.0f, 2.0f, -3.0f};
  const float close_values[] = {1.00001f, 2.00002f, -3.00003f};
  RunArtifacts golden, run;
  golden.stdout_text = run.stdout_text = "ok\n";
  workloads::AppendToOutput(&golden, std::span<const float>(golden_values));
  workloads::AppendToOutput(&run, std::span<const float>(close_values));

  const workloads::ToleranceChecker loose(workloads::ToleranceChecker::Element::kFloat,
                                          1e-3, 1e-6);
  EXPECT_FALSE(loose.IsSdc(golden, run));
  const workloads::ToleranceChecker strict(workloads::ToleranceChecker::Element::kFloat,
                                           1e-9, 1e-12);
  EXPECT_TRUE(strict.IsSdc(golden, run));
  // Byte-identical outputs would still be SDC under Classify's exact default
  // only when they differ — the tolerance checker overrides that.
  EXPECT_EQ(Classify(golden, run, loose).outcome, Outcome::kMasked);
  EXPECT_EQ(Classify(golden, run, strict).outcome, Outcome::kSdc);
}

TEST(Outcome, ToleranceCheckerCatchesNanAndSizeChanges) {
  const float golden_values[] = {1.0f, 2.0f};
  RunArtifacts golden, run;
  golden.stdout_text = run.stdout_text = "ok\n";
  workloads::AppendToOutput(&golden, std::span<const float>(golden_values));
  const float nan_values[] = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  workloads::AppendToOutput(&run, std::span<const float>(nan_values));
  const workloads::ToleranceChecker checker(workloads::ToleranceChecker::Element::kFloat,
                                            1e-2, 1e-2);
  EXPECT_TRUE(checker.IsSdc(golden, run));

  RunArtifacts truncated;
  truncated.stdout_text = "ok\n";
  const float one[] = {1.0f};
  workloads::AppendToOutput(&truncated, std::span<const float>(one));
  EXPECT_TRUE(checker.IsSdc(golden, truncated));
}

TEST(Outcome, CountsArithmetic) {
  OutcomeCounts counts;
  counts.Add({Outcome::kSdc, Symptom::kStdoutDiff, false});
  counts.Add({Outcome::kSdc, Symptom::kOutputFileDiff, true});
  counts.Add({Outcome::kMasked, Symptom::kNone, true});
  counts.Add({Outcome::kDue, Symptom::kTimeout, false});
  EXPECT_EQ(counts.total(), 4u);
  EXPECT_EQ(counts.sdc, 2u);
  EXPECT_EQ(counts.potential_due, 2u);
  EXPECT_DOUBLE_EQ(counts.SdcPct(), 50.0);
  EXPECT_DOUBLE_EQ(counts.DuePct(), 25.0);
  EXPECT_DOUBLE_EQ(counts.MaskedPct(), 25.0);

  OutcomeCounts more;
  more.Add({Outcome::kMasked, Symptom::kNone, false});
  counts += more;
  EXPECT_EQ(counts.total(), 5u);
  EXPECT_EQ(counts.masked, 2u);
}

TEST(Outcome, EmptyCountsPercentagesAreZero) {
  const OutcomeCounts counts;
  EXPECT_DOUBLE_EQ(counts.SdcPct(), 0.0);
  EXPECT_DOUBLE_EQ(counts.MaskedPct(), 0.0);
}

TEST(Outcome, WeightedOutcomes) {
  WeightedOutcomes w;
  w.Add({Outcome::kSdc, Symptom::kStdoutDiff, false}, 0.3);
  w.Add({Outcome::kMasked, Symptom::kNone, true}, 0.5);
  w.Add({Outcome::kDue, Symptom::kCrash, false}, 0.2);
  EXPECT_DOUBLE_EQ(w.total(), 1.0);
  EXPECT_DOUBLE_EQ(w.sdc, 0.3);
  EXPECT_DOUBLE_EQ(w.potential_due, 0.5);
}

TEST(Outcome, Names) {
  EXPECT_EQ(OutcomeName(Outcome::kSdc), "SDC");
  EXPECT_EQ(OutcomeName(Outcome::kDue), "DUE");
  EXPECT_EQ(OutcomeName(Outcome::kMasked), "Masked");
  EXPECT_EQ(SymptomName(Symptom::kTimeout), "timeout (monitor detection)");
}

}  // namespace
}  // namespace nvbitfi::fi
