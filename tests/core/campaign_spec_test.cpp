#include "core/campaign_spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nvbitfi::fi {
namespace {

TEST(CampaignSpec, SerializeParseRoundTrip) {
  CampaignSpec spec;
  spec.program = "314.omriq";
  spec.seed = 987654321;
  spec.num_injections = 37;
  spec.group = 5;
  spec.flip_model = 3;
  spec.randomize_flip_model = false;
  spec.approximate = false;  // static modes require exact profiling
  spec.watchdog_multiplier = 11;
  spec.trace = true;
  spec.checkpoints = false;
  spec.static_mode = "prune";
  spec.element = "f64";

  const std::optional<CampaignSpec> parsed = CampaignSpec::Parse(spec.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->program, spec.program);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->num_injections, spec.num_injections);
  EXPECT_EQ(parsed->group, spec.group);
  EXPECT_EQ(parsed->flip_model, spec.flip_model);
  EXPECT_EQ(parsed->randomize_flip_model, spec.randomize_flip_model);
  EXPECT_EQ(parsed->approximate, spec.approximate);
  EXPECT_EQ(parsed->watchdog_multiplier, spec.watchdog_multiplier);
  EXPECT_EQ(parsed->trace, spec.trace);
  EXPECT_EQ(parsed->checkpoints, spec.checkpoints);
  EXPECT_EQ(parsed->static_mode, spec.static_mode);
  EXPECT_EQ(parsed->element, spec.element);
  // The wire form is canonical: re-serializing reproduces it byte for byte.
  EXPECT_EQ(parsed->Serialize(), spec.Serialize());
}

TEST(CampaignSpec, AdaptiveKeysRoundTripOnlyWhenSet) {
  CampaignSpec spec;
  spec.program = "314.omriq";
  spec.seed = 5;
  spec.num_injections = 200;
  spec.approximate = false;  // adaptive requires exact profiling
  spec.adaptive = true;
  spec.adaptive_confidence = 0.99;
  spec.adaptive_target_width = 0.08;
  spec.adaptive_round_size = 48;
  spec.adaptive_min_per_stratum = 6;

  const std::optional<CampaignSpec> parsed = CampaignSpec::Parse(spec.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->adaptive);
  EXPECT_DOUBLE_EQ(parsed->adaptive_confidence, 0.99);
  EXPECT_DOUBLE_EQ(parsed->adaptive_target_width, 0.08);
  EXPECT_EQ(parsed->adaptive_round_size, 48);
  EXPECT_EQ(parsed->adaptive_min_per_stratum, 6);
  EXPECT_EQ(parsed->Serialize(), spec.Serialize());

  // A uniform campaign's wire form stays exactly as it was before adaptive
  // sampling existed: no adaptive keys at all.
  CampaignSpec uniform;
  uniform.program = "314.omriq";
  EXPECT_EQ(uniform.Serialize().find("adaptive"), std::string::npos);
}

TEST(CampaignSpec, ParseRejectsAdaptiveWithApproximateProfiling) {
  CampaignSpec spec;
  spec.program = "314.omriq";
  spec.adaptive = true;
  spec.approximate = true;  // strata need exact sites: invalid combination
  EXPECT_FALSE(CampaignSpec::Parse(spec.Serialize()).has_value());
  spec.approximate = false;
  EXPECT_TRUE(CampaignSpec::Parse(spec.Serialize()).has_value());
}

TEST(CampaignSpec, ParseRejectsMalformedInput) {
  EXPECT_FALSE(CampaignSpec::Parse("").has_value());
  EXPECT_FALSE(CampaignSpec::Parse("not a spec\nprogram x\n").has_value());

  CampaignSpec spec;
  spec.program = "314.omriq";
  const std::string good = spec.Serialize();
  EXPECT_TRUE(CampaignSpec::Parse(good).has_value());
  EXPECT_FALSE(CampaignSpec::Parse(good + "bogus_key 1\n").has_value());

  CampaignSpec bad_group = spec;
  bad_group.group = 9;  // ArchStateId range is 1..8
  EXPECT_FALSE(CampaignSpec::Parse(bad_group.Serialize()).has_value());
  CampaignSpec bad_static = spec;
  bad_static.static_mode = "sometimes";
  EXPECT_FALSE(CampaignSpec::Parse(bad_static.Serialize()).has_value());
}

TEST(CampaignSpec, ToConfigCarriesDeterministicFields) {
  CampaignSpec spec;
  spec.program = "314.omriq";
  spec.seed = 77;
  spec.num_injections = 9;
  spec.group = 2;
  spec.flip_model = 4;
  spec.randomize_flip_model = false;
  spec.approximate = true;
  spec.watchdog_multiplier = 13;
  spec.checkpoints = false;

  const TransientCampaignConfig config = spec.ToConfig();
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.num_injections, 9);
  EXPECT_EQ(config.group, ArchStateId::kGFp32);
  EXPECT_EQ(config.flip_model, BitFlipModel::kZeroValue);
  EXPECT_FALSE(config.randomize_flip_model);
  EXPECT_EQ(config.profiling, ProfilerTool::Mode::kApproximate);
  EXPECT_EQ(config.watchdog_multiplier, 13u);
  EXPECT_FALSE(config.checkpoints);
  // Process-local fields stay at defaults for the caller.
  EXPECT_EQ(config.num_workers, 1);
  EXPECT_EQ(config.index_begin, 0u);
  EXPECT_EQ(config.index_end, 0u);
  EXPECT_EQ(config.cancel, nullptr);
}

TEST(PlanShards, TilesIndexSpaceContiguously) {
  const std::vector<ShardRange> shards = PlanShards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (ShardRange{0, 4}));  // 10 % 3 == 1 extra up front
  EXPECT_EQ(shards[1], (ShardRange{4, 7}));
  EXPECT_EQ(shards[2], (ShardRange{7, 10}));

  // More shards than experiments: one singleton range per experiment.
  const std::vector<ShardRange> tiny = PlanShards(2, 5);
  ASSERT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny[0], (ShardRange{0, 1}));
  EXPECT_EQ(tiny[1], (ShardRange{1, 2}));

  EXPECT_TRUE(PlanShards(0, 4).empty());
  EXPECT_TRUE(PlanShards(7, 0).empty());

  // Whatever the split, the ranges always tile [0, n).
  for (std::size_t n : {1u, 7u, 16u, 100u}) {
    for (std::size_t k : {1u, 2u, 3u, 9u}) {
      std::size_t next = 0;
      for (const ShardRange& r : PlanShards(n, k)) {
        EXPECT_EQ(r.begin, next);
        EXPECT_GT(r.end, r.begin);
        next = r.end;
      }
      EXPECT_EQ(next, n);
    }
  }
}

TEST(ParseShardRange, AcceptsHalfOpenRanges) {
  const std::optional<ShardRange> range = ParseShardRange("3:11");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->begin, 3u);
  EXPECT_EQ(range->end, 11u);
  EXPECT_EQ(range->size(), 8u);

  const std::optional<ShardRange> empty = ParseShardRange("5:5");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->size(), 0u);

  EXPECT_FALSE(ParseShardRange("").has_value());
  EXPECT_FALSE(ParseShardRange("5").has_value());
  EXPECT_FALSE(ParseShardRange("5:").has_value());
  EXPECT_FALSE(ParseShardRange(":5").has_value());
  EXPECT_FALSE(ParseShardRange("7:3").has_value());
  EXPECT_FALSE(ParseShardRange("a:b").has_value());
  EXPECT_FALSE(ParseShardRange("1:2:3").has_value());
}

}  // namespace
}  // namespace nvbitfi::fi
