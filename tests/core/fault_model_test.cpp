#include "core/fault_model.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace nvbitfi::fi {
namespace {

TEST(FaultModel, ArchStateIdNumbering) {
  // Table II numbers the ids 1..8.
  EXPECT_EQ(static_cast<int>(ArchStateId::kGFp64), 1);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGFp32), 2);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGLd), 3);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGPr), 4);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGNoDest), 5);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGOthers), 6);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGGppr), 7);
  EXPECT_EQ(static_cast<int>(ArchStateId::kGGp), 8);
  EXPECT_FALSE(ArchStateIdFromInt(0).has_value());
  EXPECT_FALSE(ArchStateIdFromInt(9).has_value());
  EXPECT_EQ(*ArchStateIdFromInt(3), ArchStateId::kGLd);
}

TEST(FaultModel, BitFlipModelNumbering) {
  EXPECT_EQ(static_cast<int>(BitFlipModel::kFlipSingleBit), 1);
  EXPECT_EQ(static_cast<int>(BitFlipModel::kZeroValue), 4);
  EXPECT_FALSE(BitFlipModelFromInt(0).has_value());
  EXPECT_FALSE(BitFlipModelFromInt(5).has_value());
}

TEST(FaultModel, WellKnownGroupMembers) {
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kDADD, ArchStateId::kGFp64));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kFFMA, ArchStateId::kGFp32));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kLDG, ArchStateId::kGLd));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kISETP, ArchStateId::kGPr));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kSTG, ArchStateId::kGNoDest));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kIMAD, ArchStateId::kGOthers));
  EXPECT_FALSE(OpcodeInGroup(sim::Opcode::kSTG, ArchStateId::kGGp));
  EXPECT_FALSE(OpcodeInGroup(sim::Opcode::kISETP, ArchStateId::kGGp));
  EXPECT_TRUE(OpcodeInGroup(sim::Opcode::kISETP, ArchStateId::kGGppr));
}

// Table II set algebra, checked over the whole ISA.
TEST(FaultModel, GroupAlgebraHoldsForEveryOpcode) {
  for (int i = 0; i < sim::kOpcodeCount; ++i) {
    const sim::Opcode op = static_cast<sim::Opcode>(i);
    const bool no_dest = OpcodeInGroup(op, ArchStateId::kGNoDest);
    const bool pr = OpcodeInGroup(op, ArchStateId::kGPr);
    const bool gppr = OpcodeInGroup(op, ArchStateId::kGGppr);
    const bool gp = OpcodeInGroup(op, ArchStateId::kGGp);

    // G_GPPR = all - G_NODEST.
    EXPECT_EQ(gppr, !no_dest) << sim::OpcodeName(op);
    // G_GP = all - G_NODEST - G_PR.
    EXPECT_EQ(gp, !no_dest && !pr) << sim::OpcodeName(op);
    // G_PR and G_NODEST are disjoint.
    EXPECT_FALSE(pr && no_dest) << sim::OpcodeName(op);
    // Groups 1-6 partition the ISA: exactly one of FP64/FP32/LD/PR/NODEST/
    // OTHERS holds (loads are not FP arithmetic, etc.).
    const int partition = OpcodeInGroup(op, ArchStateId::kGFp64) +
                          OpcodeInGroup(op, ArchStateId::kGFp32) +
                          OpcodeInGroup(op, ArchStateId::kGLd) + pr + no_dest +
                          OpcodeInGroup(op, ArchStateId::kGOthers);
    EXPECT_EQ(partition, 1) << sim::OpcodeName(op);
  }
}

TEST(FaultModel, SingleBitMaskMatchesFormula) {
  // FLIP_SINGLE_BIT: 0x1 << (32 * value).
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipSingleBit, 0.0, 0), 0x1u);
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipSingleBit, 0.5, 0), 0x10000u);
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipSingleBit, 31.0 / 32.0, 0), 0x80000000u);
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipSingleBit, 0.999, 0), 0x80000000u);
}

TEST(FaultModel, TwoBitMaskMatchesFormula) {
  // FLIP_TWO_BITS: 0x3 << (31 * value) — always two adjacent bits.
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipTwoBits, 0.0, 0), 0x3u);
  EXPECT_EQ(InjectionMask32(BitFlipModel::kFlipTwoBits, 0.999, 0), 0xC0000000u);
  for (double v = 0.0; v < 1.0; v += 0.07) {
    EXPECT_EQ(PopCount32(InjectionMask32(BitFlipModel::kFlipTwoBits, v, 0)), 2);
  }
}

TEST(FaultModel, RandomValueMaskMakesRegisterBecomeTarget) {
  const std::uint32_t original = 0x12345678;
  const std::uint32_t mask = InjectionMask32(BitFlipModel::kRandomValue, 0.25, original);
  EXPECT_EQ(original ^ mask, static_cast<std::uint32_t>(4294967295.0 * 0.25));
}

TEST(FaultModel, ZeroValueMaskZeroesTheRegister) {
  for (const std::uint32_t original : {0x0u, 0x1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    const std::uint32_t mask =
        InjectionMask32(BitFlipModel::kZeroValue, 0.5, original);
    EXPECT_EQ(original ^ mask, 0u);
  }
}

TEST(FaultModel, Mask64Variants) {
  EXPECT_EQ(InjectionMask64(BitFlipModel::kFlipSingleBit, 63.0 / 64.0, 0),
            0x8000000000000000ull);
  EXPECT_EQ(InjectionMask64(BitFlipModel::kZeroValue, 0.1, 0xAABBull), 0xAABBull);
  const std::uint64_t original = 0x0102030405060708ull;
  const std::uint64_t mask = InjectionMask64(BitFlipModel::kRandomValue, 0.5, original);
  EXPECT_EQ(original ^ mask,
            static_cast<std::uint64_t>(18446744073709551615.0 * 0.5));
}

TEST(FaultModel, MaskRejectsOutOfRangeValue) {
  EXPECT_THROW(InjectionMask32(BitFlipModel::kFlipSingleBit, 1.0, 0), std::logic_error);
  EXPECT_THROW(InjectionMask32(BitFlipModel::kFlipSingleBit, -0.1, 0), std::logic_error);
}

TEST(FaultModel, TransientParamsSerializeRoundTrip) {
  TransientFaultParams p;
  p.arch_state_id = ArchStateId::kGLd;
  p.bit_flip_model = BitFlipModel::kRandomValue;
  p.kernel_name = "md_forces";
  p.kernel_count = 17;
  p.instruction_count = 123456789;
  p.destination_register = 0.123456;
  p.bit_pattern_value = 0.987654;
  const auto back = TransientFaultParams::Parse(p.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(FaultModel, TransientParamsParseRejectsMalformed) {
  EXPECT_FALSE(TransientFaultParams::Parse("").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("1\n2\n\n0\n0\n0.5\n0.5\n").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("9\n1\nk\n0\n0\n0.5\n0.5\n").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("1\n7\nk\n0\n0\n0.5\n0.5\n").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("1\n1\nk\n0\n0\n1.5\n0.5\n").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("1\n1\nk\n0\n0\n0.5\n-0.1\n").has_value());
  EXPECT_FALSE(TransientFaultParams::Parse("1\n1\nk\nxyz\n0\n0.5\n0.5\n").has_value());
}

TEST(FaultModel, PermanentParamsSerializeRoundTrip) {
  PermanentFaultParams p;
  p.sm_id = 5;
  p.lane_id = 31;
  p.bit_mask = 0x80000001;
  p.opcode_id = 170;
  const auto back = PermanentFaultParams::Parse(p.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
  EXPECT_EQ(back->opcode(), static_cast<sim::Opcode>(170));
}

TEST(FaultModel, PermanentParamsParseRejectsMalformed) {
  EXPECT_FALSE(PermanentFaultParams::Parse("").has_value());
  EXPECT_FALSE(PermanentFaultParams::Parse("0\n32\n0x1\n0\n").has_value());   // lane
  EXPECT_FALSE(PermanentFaultParams::Parse("0\n0\n0x1\n171\n").has_value());  // opcode
  EXPECT_FALSE(PermanentFaultParams::Parse("-1\n0\n0x1\n0\n").has_value());   // sm
  EXPECT_FALSE(PermanentFaultParams::Parse("0\n0\n0x100000000\n0\n").has_value());
}

TEST(FaultModel, IntermittentParamsSerializeRoundTrip) {
  IntermittentFaultParams p;
  p.base.sm_id = 3;
  p.base.lane_id = 12;
  p.base.bit_mask = 0xdeadbeef;
  p.base.opcode_id = 42;
  p.duty_cycle = 0.125;
  p.mean_burst_events = 24.5;
  p.seed = 9001;
  const auto back = IntermittentFaultParams::Parse(p.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(FaultModel, IntermittentParamsParseRejectsMalformed) {
  EXPECT_FALSE(IntermittentFaultParams::Parse("").has_value());
  // Too few lines (base params only).
  EXPECT_FALSE(IntermittentFaultParams::Parse("0\n0\n0x1\n0\n").has_value());
  // Malformed base (lane out of range).
  EXPECT_FALSE(
      IntermittentFaultParams::Parse("0\n32\n0x1\n0\n0.5\n16\n1\n").has_value());
  // Duty cycle must be in (0,1) and burst length >= 1 event, matching the
  // IntermittentInjectorTool preconditions.
  EXPECT_FALSE(
      IntermittentFaultParams::Parse("0\n0\n0x1\n0\n0\n16\n1\n").has_value());
  EXPECT_FALSE(
      IntermittentFaultParams::Parse("0\n0\n0x1\n0\n1\n16\n1\n").has_value());
  EXPECT_FALSE(
      IntermittentFaultParams::Parse("0\n0\n0x1\n0\n0.5\n0.25\n1\n").has_value());
  EXPECT_FALSE(
      IntermittentFaultParams::Parse("0\n0\n0x1\n0\n0.5\n16\nxyz\n").has_value());
}

TEST(FaultModel, Names) {
  EXPECT_EQ(ArchStateIdName(ArchStateId::kGFp64), "G_FP64");
  EXPECT_EQ(ArchStateIdName(ArchStateId::kGGp), "G_GP");
  EXPECT_EQ(BitFlipModelName(BitFlipModel::kFlipSingleBit), "FLIP_SINGLE_BIT");
  EXPECT_EQ(BitFlipModelName(BitFlipModel::kZeroValue), "ZERO_VALUE");
}

}  // namespace
}  // namespace nvbitfi::fi
