#include "core/extended_models.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.h"
#include "core/campaign.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

RunArtifacts RunWith(nvbit::Tool* tool) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  return runner.Execute(tool, sim::DeviceProps{}, /*watchdog=*/1 << 20);
}

TransientFaultParams FaddSite() {
  TransientFaultParams p;
  p.arch_state_id = ArchStateId::kGGp;
  p.bit_flip_model = BitFlipModel::kFlipSingleBit;
  p.kernel_name = "work";
  p.kernel_count = 0;
  p.instruction_count = 64;  // FADD lane 0 (see test_program.h)
  p.destination_register = 0.0;
  p.bit_pattern_value = 0.5;  // bit 16
  return p;
}

TEST(CorruptionFn, Semantics) {
  EXPECT_EQ(ApplyCorruptionFn(CorruptionFn::kXorMask, 0xF0F0, 0x00FF), 0xF00Fu);
  EXPECT_EQ(ApplyCorruptionFn(CorruptionFn::kStuckAtZero, 0xF0F0, 0x00FF), 0xF000u);
  EXPECT_EQ(ApplyCorruptionFn(CorruptionFn::kStuckAtOne, 0xF0F0, 0x00FF), 0xF0FFu);
  EXPECT_EQ(ApplyCorruptionFn(CorruptionFn::kLeftShift, 0x1, 0x7), 0x8u);  // popcount 3
  EXPECT_EQ(ApplyCorruptionFn(CorruptionFn::kSignInvert, 0x1, 0xFFFF), 0x80000001u);
}

TEST(CorruptionFn, NamesAndParsing) {
  EXPECT_EQ(CorruptionFnName(CorruptionFn::kStuckAtOne), "STUCK_AT_ONE");
  EXPECT_EQ(*CorruptionFnFromInt(0), CorruptionFn::kXorMask);
  EXPECT_EQ(*CorruptionFnFromInt(4), CorruptionFn::kSignInvert);
  EXPECT_FALSE(CorruptionFnFromInt(5).has_value());
  EXPECT_FALSE(CorruptionFnFromInt(-1).has_value());
}

TEST(ExtendedInjector, SingleLaneSingleRegisterMatchesBaseModel) {
  ExtendedTransientParams params;
  params.base = FaddSite();
  ExtendedInjectorTool tool(params);
  RunWith(&tool);
  ASSERT_EQ(tool.records().size(), 1u);
  const InjectionRecord& rec = tool.records()[0];
  EXPECT_EQ(rec.opcode, sim::Opcode::kFADD);
  EXPECT_EQ(rec.target_register, 2);
  EXPECT_EQ(rec.lane_id, 0);
  EXPECT_EQ(rec.mask, 0x10000u);
}

TEST(ExtendedInjector, RegisterSpanCorruptsConsecutiveRegisters) {
  ExtendedTransientParams params;
  params.base = FaddSite();
  params.register_span = 3;
  ExtendedInjectorTool tool(params);
  RunWith(&tool);
  ASSERT_EQ(tool.records().size(), 3u);
  EXPECT_EQ(tool.records()[0].target_register, 2);
  EXPECT_EQ(tool.records()[1].target_register, 3);
  EXPECT_EQ(tool.records()[2].target_register, 4);
  for (const InjectionRecord& rec : tool.records()) {
    EXPECT_EQ(rec.lane_id, 0);
  }
}

TEST(ExtendedInjector, WarpWideCorruptsEveryActiveLane) {
  ExtendedTransientParams params;
  params.base = FaddSite();
  params.warp_wide = true;
  ExtendedInjectorTool tool(params);
  RunWith(&tool);
  // All 32 lanes execute the FADD; the site fires on lane 0 and the rest of
  // the cohort is corrupted too.
  ASSERT_EQ(tool.records().size(), 32u);
  std::set<int> lanes;
  for (const InjectionRecord& rec : tool.records()) {
    EXPECT_EQ(rec.static_index, 2u);
    lanes.insert(rec.lane_id);
  }
  EXPECT_EQ(lanes.size(), 32u);
}

TEST(ExtendedInjector, StuckAtZeroFunction) {
  ExtendedTransientParams params;
  params.base = FaddSite();
  params.corruption = CorruptionFn::kStuckAtZero;
  // FADD writes 1.0f = 0x3F800000; mask bit 16 is already 0 -> no change.
  ExtendedInjectorTool tool(params);
  RunWith(&tool);
  ASSERT_EQ(tool.records().size(), 1u);
  EXPECT_FALSE(tool.records()[0].corrupted);
  EXPECT_EQ(tool.records()[0].after_bits, tool.records()[0].before_bits);

  // A stuck-at-zero on a set bit does corrupt.
  ExtendedTransientParams hits = params;
  hits.base.bit_pattern_value = 23.5 / 32.0;  // bit 23 of 0x3F800000 is set
  ExtendedInjectorTool tool2(hits);
  RunWith(&tool2);
  ASSERT_EQ(tool2.records().size(), 1u);
  EXPECT_TRUE(tool2.records()[0].corrupted);
  EXPECT_EQ(tool2.records()[0].after_bits, 0x3F800000u & ~(1u << 23));
}

TEST(ExtendedInjector, RejectsBadSpan) {
  ExtendedTransientParams params;
  params.base = FaddSite();
  params.register_span = 0;
  EXPECT_THROW(ExtendedInjectorTool{params}, std::logic_error);
  params.register_span = 9;
  EXPECT_THROW(ExtendedInjectorTool{params}, std::logic_error);
}

TEST(FaultDictionary, AddLookupSample) {
  FaultDictionary dict;
  dict.Add(sim::Opcode::kFADD, {0x00010000u, 3.0});
  dict.Add(sim::Opcode::kFADD, {0x00000001u, 1.0});
  ASSERT_NE(dict.Lookup(sim::Opcode::kFADD), nullptr);
  EXPECT_EQ(dict.Lookup(sim::Opcode::kFADD)->size(), 2u);
  EXPECT_EQ(dict.Lookup(sim::Opcode::kIMAD), nullptr);

  Rng rng(5);
  int heavy = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint32_t mask = dict.Sample(sim::Opcode::kFADD, rng);
    ASSERT_TRUE(mask == 0x00010000u || mask == 0x00000001u);
    if (mask == 0x00010000u) ++heavy;
  }
  EXPECT_NEAR(heavy, 3000, 200);  // 3:1 weighting
}

TEST(FaultDictionary, SampleFallsBackForUnknownOpcode) {
  FaultDictionary dict;
  Rng rng(3);
  const std::uint32_t mask = dict.Sample(sim::Opcode::kIMAD, rng);
  EXPECT_EQ(PopCount32(mask), 1);
}

TEST(FaultDictionary, SerializeParseRoundTrip) {
  FaultDictionary dict;
  dict.Add(sim::Opcode::kFADD, {0x10000u, 2.5});
  dict.Add(sim::Opcode::kLDG, {0xCu, 1.0});
  const auto back = FaultDictionary::Parse(dict.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->opcode_count(), 2u);
  ASSERT_NE(back->Lookup(sim::Opcode::kFADD), nullptr);
  EXPECT_EQ(back->Lookup(sim::Opcode::kFADD)->at(0).mask, 0x10000u);
  EXPECT_DOUBLE_EQ(back->Lookup(sim::Opcode::kFADD)->at(0).weight, 2.5);
}

TEST(FaultDictionary, ParseRejectsMalformed) {
  EXPECT_FALSE(FaultDictionary::Parse("FADD 0x1").has_value());
  EXPECT_FALSE(FaultDictionary::Parse("FROB 0x1 1.0").has_value());
  EXPECT_FALSE(FaultDictionary::Parse("FADD zz 1.0").has_value());
  EXPECT_FALSE(FaultDictionary::Parse("FADD 0x1 -1").has_value());
  EXPECT_FALSE(FaultDictionary::Parse("FADD 0x100000000 1").has_value());
  // Comments and blank lines are fine.
  EXPECT_TRUE(FaultDictionary::Parse("# comment\n\nFADD 0x1 1.0\n").has_value());
}

TEST(FaultDictionary, SyntheticCoversEveryDestOpcode) {
  const FaultDictionary dict = FaultDictionary::Synthetic(1);
  for (int i = 0; i < sim::kOpcodeCount; ++i) {
    const sim::Opcode op = static_cast<sim::Opcode>(i);
    if (sim::HasDest(op)) {
      EXPECT_NE(dict.Lookup(op), nullptr) << sim::OpcodeName(op);
    } else {
      EXPECT_EQ(dict.Lookup(op), nullptr) << sim::OpcodeName(op);
    }
  }
}

TEST(FaultDictionary, SyntheticIsDeterministic) {
  const FaultDictionary a = FaultDictionary::Synthetic(9);
  const FaultDictionary b = FaultDictionary::Synthetic(9);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  const FaultDictionary c = FaultDictionary::Synthetic(10);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

TEST(DictionaryInjector, UsesOpcodeConditionedMask) {
  const FaultDictionary dict = [] {
    FaultDictionary d;
    d.Add(sim::Opcode::kFADD, {0x00400000u, 1.0});  // only possible FADD mask
    return d;
  }();
  DictionaryInjectorTool tool(FaddSite(), dict, /*seed=*/3);
  RunWith(&tool);
  ASSERT_TRUE(tool.record().activated);
  EXPECT_EQ(tool.record().opcode, sim::Opcode::kFADD);
  EXPECT_EQ(tool.record().mask, 0x00400000u);
  EXPECT_EQ(tool.record().after_bits, tool.record().before_bits ^ 0x00400000u);
}

TEST(DictionaryInjector, PredicateDestinationsFlip) {
  const FaultDictionary dict = FaultDictionary::Synthetic(2);
  TransientFaultParams site;
  site.arch_state_id = ArchStateId::kGPr;
  site.kernel_name = "work";
  site.kernel_count = 0;
  site.instruction_count = 0;  // ISETP lane 0
  DictionaryInjectorTool tool(site, dict, 1);
  RunWith(&tool);
  ASSERT_TRUE(tool.record().activated);
  EXPECT_TRUE(tool.record().pred_target);
  EXPECT_NE(tool.record().before_bits, tool.record().after_bits);
}

}  // namespace
}  // namespace nvbitfi::fi
