#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

TEST(Campaign, GoldenRunIsCleanAndDeterministic) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const RunArtifacts a = runner.RunGolden(sim::DeviceProps{});
  const RunArtifacts b = runner.RunGolden(sim::DeviceProps{});
  EXPECT_EQ(a.exit_code, 0);
  EXPECT_FALSE(a.timed_out);
  EXPECT_TRUE(a.cuda_errors.empty());
  EXPECT_TRUE(a.dmesg.empty());
  EXPECT_EQ(a.stdout_text, b.stdout_text);
  EXPECT_EQ(a.output_file, b.output_file);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dynamic_kernels, 4u);
  EXPECT_EQ(a.static_kernels, 2u);
  EXPECT_EQ(a.max_launch_thread_instructions, testing::kWorkThreadInstructions);
}

TEST(Campaign, TransientCampaignShape) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 5;
  config.num_injections = 25;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);

  EXPECT_EQ(result.program, "mini");
  EXPECT_EQ(result.injections.size(), 25u);
  EXPECT_EQ(result.counts.total(), 25u);
  EXPECT_EQ(result.profile.DynamicKernelCount(), 4u);
  EXPECT_GT(result.golden.cycles, 0u);
  EXPECT_GT(result.ProfilingOverhead(), 1.0);
  EXPECT_GT(result.MedianInjectionOverhead(), 0.5);
  EXPECT_EQ(result.TotalCampaignCycles(),
            result.profiling_run.cycles + result.TotalInjectionCycles());

  // Every selected site is inside the profiled population and every
  // classification is consistent with its artifacts.
  for (const InjectionRun& run : result.injections) {
    EXPECT_TRUE(run.params.kernel_name == "work" || run.params.kernel_name == "tail");
    EXPECT_GE(run.params.destination_register, 0.0);
    EXPECT_LT(run.params.destination_register, 1.0);
    if (run.classification.outcome == Outcome::kDue) {
      EXPECT_TRUE(run.artifacts.timed_out || run.artifacts.crashed ||
                  run.artifacts.exit_code != 0);
    }
  }
}

TEST(Campaign, DeterministicForSameSeed) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 77;
  config.num_injections = 12;
  const TransientCampaignResult a = runner.RunTransientCampaign(config);
  const TransientCampaignResult b = runner.RunTransientCampaign(config);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    EXPECT_EQ(a.injections[i].params, b.injections[i].params);
    EXPECT_EQ(a.injections[i].classification, b.injections[i].classification);
  }
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.due, b.counts.due);
}

TEST(Campaign, DifferentSeedsSelectDifferentSites) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 10;
  config.seed = 1;
  const TransientCampaignResult a = runner.RunTransientCampaign(config);
  config.seed = 2;
  const TransientCampaignResult b = runner.RunTransientCampaign(config);
  int different = 0;
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    if (!(a.injections[i].params == b.injections[i].params)) ++different;
  }
  EXPECT_GT(different, 5);
}

TEST(Campaign, FixedFlipModelIsHonoured) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 8;
  config.randomize_flip_model = false;
  config.flip_model = BitFlipModel::kZeroValue;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  for (const InjectionRun& run : result.injections) {
    EXPECT_EQ(run.params.bit_flip_model, BitFlipModel::kZeroValue);
  }
}

TEST(Campaign, RandomizedFlipModelsCoverAllFour) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 40;
  config.randomize_flip_model = true;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  std::set<BitFlipModel> seen;
  for (const InjectionRun& run : result.injections) {
    seen.insert(run.params.bit_flip_model);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Campaign, GroupConfigRestrictsSites) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 10;
  config.group = ArchStateId::kGFp32;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  for (const InjectionRun& run : result.injections) {
    EXPECT_EQ(run.params.arch_state_id, ArchStateId::kGFp32);
    if (run.record.activated) {
      EXPECT_EQ(run.record.opcode, sim::Opcode::kFADD);
    }
  }
}

TEST(Campaign, EmptyGroupYieldsMaskedRuns) {
  const MiniProgram program;  // executes no FP64 at all
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 5;
  config.group = ArchStateId::kGFp64;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  EXPECT_EQ(result.counts.masked, 5u);
  EXPECT_EQ(result.counts.sdc, 0u);
}

TEST(Campaign, PermanentCampaignSweepsExecutedOpcodes) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 3;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);

  const auto executed = profile.ExecutedOpcodes();
  EXPECT_EQ(result.runs.size(), executed.size());
  EXPECT_EQ(result.executed_opcodes, executed.size());
  EXPECT_EQ(result.counts.total(), result.runs.size());

  double weight_sum = 0.0;
  for (const PermanentRun& run : result.runs) {
    EXPECT_GE(run.params.lane_id, 0);
    EXPECT_LT(run.params.lane_id, 32);
    EXPECT_NE(run.params.bit_mask, 0u);
    weight_sum += run.weight;
  }
  // Executed-opcode weights cover the whole dynamic instruction population.
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_NEAR(result.weighted.total(), 1.0, 1e-9);
}

TEST(Campaign, PermanentCampaignAllOpcodesMode) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kApproximate, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.only_executed_opcodes = false;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);
  EXPECT_EQ(result.runs.size(), static_cast<std::size_t>(sim::kOpcodeCount));
}

TEST(Campaign, PermanentCampaignDeterministic) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 31;
  const PermanentCampaignResult a = runner.RunPermanentCampaign(config, profile);
  const PermanentCampaignResult b = runner.RunPermanentCampaign(config, profile);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].params, b.runs[i].params);
    EXPECT_EQ(a.runs[i].activations, b.runs[i].activations);
    EXPECT_EQ(a.runs[i].classification, b.runs[i].classification);
  }
}

}  // namespace
}  // namespace nvbitfi::fi
