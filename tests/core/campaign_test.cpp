#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "core/statistics.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

TEST(Campaign, GoldenRunIsCleanAndDeterministic) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const RunArtifacts a = runner.RunGolden(sim::DeviceProps{});
  const RunArtifacts b = runner.RunGolden(sim::DeviceProps{});
  EXPECT_EQ(a.exit_code, 0);
  EXPECT_FALSE(a.timed_out);
  EXPECT_TRUE(a.cuda_errors.empty());
  EXPECT_TRUE(a.dmesg.empty());
  EXPECT_EQ(a.stdout_text, b.stdout_text);
  EXPECT_EQ(a.output_file, b.output_file);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dynamic_kernels, 4u);
  EXPECT_EQ(a.static_kernels, 2u);
  EXPECT_EQ(a.max_launch_thread_instructions, testing::kWorkThreadInstructions);
}

TEST(Campaign, TransientCampaignShape) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 5;
  config.num_injections = 25;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);

  EXPECT_EQ(result.program, "mini");
  EXPECT_EQ(result.injections.size(), 25u);
  EXPECT_EQ(result.counts.total(), 25u);
  EXPECT_EQ(result.profile.DynamicKernelCount(), 4u);
  EXPECT_GT(result.golden.cycles, 0u);
  EXPECT_GT(result.ProfilingOverhead(), 1.0);
  EXPECT_GT(result.MedianInjectionOverhead(), 0.5);
  EXPECT_EQ(result.TotalCampaignCycles(),
            result.profiling_run.cycles + result.TotalInjectionCycles());

  // Every selected site is inside the profiled population and every
  // classification is consistent with its artifacts.
  for (const InjectionRun& run : result.injections) {
    EXPECT_TRUE(run.params.kernel_name == "work" || run.params.kernel_name == "tail");
    EXPECT_GE(run.params.destination_register, 0.0);
    EXPECT_LT(run.params.destination_register, 1.0);
    if (run.classification.outcome == Outcome::kDue) {
      EXPECT_TRUE(run.artifacts.timed_out || run.artifacts.crashed ||
                  run.artifacts.exit_code != 0);
    }
  }
}

TEST(Campaign, DeterministicForSameSeed) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 77;
  config.num_injections = 12;
  const TransientCampaignResult a = runner.RunTransientCampaign(config);
  const TransientCampaignResult b = runner.RunTransientCampaign(config);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    EXPECT_EQ(a.injections[i].params, b.injections[i].params);
    EXPECT_EQ(a.injections[i].classification, b.injections[i].classification);
  }
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.due, b.counts.due);
}

TEST(Campaign, CheckpointedCampaignIsBitIdenticalToUncheckpointed) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig on;
  on.seed = 33;
  on.num_injections = 20;
  on.checkpoints = true;
  TransientCampaignConfig off = on;
  off.checkpoints = false;

  const TransientCampaignResult a = runner.RunTransientCampaign(on);
  const TransientCampaignResult b = runner.RunTransientCampaign(off);

  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    const InjectionRun& x = a.injections[i];
    const InjectionRun& y = b.injections[i];
    EXPECT_EQ(x.params, y.params);
    EXPECT_EQ(x.classification, y.classification);
    EXPECT_EQ(x.record.activated, y.record.activated);
    EXPECT_EQ(x.record.static_index, y.record.static_index);
    EXPECT_EQ(x.record.after_bits, y.record.after_bits);
    EXPECT_EQ(x.artifacts.cycles, y.artifacts.cycles);
    EXPECT_EQ(x.artifacts.thread_instructions, y.artifacts.thread_instructions);
    EXPECT_EQ(x.artifacts.stdout_text, y.artifacts.stdout_text);
    EXPECT_EQ(x.artifacts.output_file, y.artifacts.output_file);
    EXPECT_EQ(x.artifacts.cuda_errors, y.artifacts.cuda_errors);
    EXPECT_EQ(x.artifacts.dmesg, y.artifacts.dmesg);
  }
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.counts.potential_due, b.counts.potential_due);
  EXPECT_EQ(a.golden.cycles, b.golden.cycles);

  // Only the checkpointed campaign reports replay savings.
  EXPECT_TRUE(a.checkpoints_used);
  EXPECT_FALSE(b.checkpoints_used);
  EXPECT_GT(a.checkpointed_runs, 0u);
  EXPECT_GT(a.replay_launches, 0u);
  EXPECT_GT(a.replay_instructions_saved, 0u);
  EXPECT_EQ(b.checkpointed_runs, 0u);
  EXPECT_EQ(b.replay_launches, 0u);
}

TEST(Campaign, CheckpointedGoldenRecordsTheLaunchStream) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const RunCache::GoldenEntry entry =
      runner.RunGoldenCheckpointed(sim::DeviceProps{});
  const RunArtifacts plain = runner.RunGolden(sim::DeviceProps{});

  ASSERT_NE(entry.checkpoints, nullptr);
  EXPECT_EQ(entry.checkpoints->launches().size(), 4u);  // 3x work + tail
  EXPECT_EQ(entry.run.cycles, plain.cycles);  // recording only observes
  EXPECT_EQ(entry.run.stdout_text, plain.stdout_text);
  EXPECT_EQ(entry.checkpoints->GlobalOrdinalOf("tail", 0), 3u);
}

TEST(Campaign, DifferentSeedsSelectDifferentSites) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 10;
  config.seed = 1;
  const TransientCampaignResult a = runner.RunTransientCampaign(config);
  config.seed = 2;
  const TransientCampaignResult b = runner.RunTransientCampaign(config);
  int different = 0;
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    if (!(a.injections[i].params == b.injections[i].params)) ++different;
  }
  EXPECT_GT(different, 5);
}

TEST(Campaign, FixedFlipModelIsHonoured) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 8;
  config.randomize_flip_model = false;
  config.flip_model = BitFlipModel::kZeroValue;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  for (const InjectionRun& run : result.injections) {
    EXPECT_EQ(run.params.bit_flip_model, BitFlipModel::kZeroValue);
  }
}

TEST(Campaign, RandomizedFlipModelsCoverAllFour) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 40;
  config.randomize_flip_model = true;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  std::set<BitFlipModel> seen;
  for (const InjectionRun& run : result.injections) {
    seen.insert(run.params.bit_flip_model);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Campaign, GroupConfigRestrictsSites) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 10;
  config.group = ArchStateId::kGFp32;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  for (const InjectionRun& run : result.injections) {
    EXPECT_EQ(run.params.arch_state_id, ArchStateId::kGFp32);
    if (run.record.activated) {
      EXPECT_EQ(run.record.opcode, sim::Opcode::kFADD);
    }
  }
}

TEST(Campaign, EmptyGroupYieldsMaskedRuns) {
  const MiniProgram program;  // executes no FP64 at all
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.num_injections = 5;
  config.group = ArchStateId::kGFp64;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);
  EXPECT_EQ(result.counts.masked, 5u);
  EXPECT_EQ(result.counts.sdc, 0u);
  EXPECT_EQ(result.trivially_masked, 5u);
  // No run happened, so no cycles: golden cycles must not be re-counted in
  // the Fig. 5 campaign total (the old code copied golden artifacts here).
  EXPECT_EQ(result.TotalInjectionCycles(), 0u);
  EXPECT_EQ(result.TotalCampaignCycles(), result.profiling_run.cycles);
  for (const InjectionRun& run : result.injections) {
    EXPECT_TRUE(run.trivially_masked);
    EXPECT_EQ(run.artifacts.cycles, 0u);
  }
}

TEST(Campaign, MedianHandlesBothParities) {
  // Odd: plain middle element.
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  // Even: mean of the two middles, not the upper-middle (which biased the
  // Fig. 4 median-overhead numbers upward).
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Campaign, ParallelTransientCampaignMatchesSerial) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 99;
  config.num_injections = 24;
  config.num_workers = 1;
  const TransientCampaignResult serial = runner.RunTransientCampaign(config);
  config.num_workers = 8;
  const TransientCampaignResult parallel = runner.RunTransientCampaign(config);

  EXPECT_EQ(serial.workers, 1);
  ASSERT_EQ(serial.injections.size(), parallel.injections.size());
  for (std::size_t i = 0; i < serial.injections.size(); ++i) {
    EXPECT_EQ(serial.injections[i].params, parallel.injections[i].params) << i;
    EXPECT_EQ(serial.injections[i].classification,
              parallel.injections[i].classification)
        << i;
    EXPECT_EQ(serial.injections[i].artifacts.cycles,
              parallel.injections[i].artifacts.cycles)
        << i;
  }
  EXPECT_EQ(serial.counts.masked, parallel.counts.masked);
  EXPECT_EQ(serial.counts.sdc, parallel.counts.sdc);
  EXPECT_EQ(serial.counts.due, parallel.counts.due);
  EXPECT_EQ(serial.counts.potential_due, parallel.counts.potential_due);
  EXPECT_EQ(serial.never_activated, parallel.never_activated);
}

TEST(Campaign, ParallelPermanentCampaignMatchesSerial) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 13;
  config.sm_id = -1;  // exercise the per-run SM draw in both modes
  config.num_workers = 1;
  const PermanentCampaignResult serial = runner.RunPermanentCampaign(config, profile);
  config.num_workers = 8;
  const PermanentCampaignResult parallel = runner.RunPermanentCampaign(config, profile);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].params, parallel.runs[i].params) << i;
    EXPECT_EQ(serial.runs[i].activations, parallel.runs[i].activations) << i;
    EXPECT_EQ(serial.runs[i].classification, parallel.runs[i].classification) << i;
  }
  EXPECT_EQ(serial.counts.masked, parallel.counts.masked);
  EXPECT_EQ(serial.counts.sdc, parallel.counts.sdc);
  EXPECT_EQ(serial.counts.due, parallel.counts.due);
  EXPECT_DOUBLE_EQ(serial.weighted.sdc, parallel.weighted.sdc);
}

TEST(Campaign, ParallelCampaignStress) {
  // Thread-sanitizer-friendly: repeated all-core campaigns over a small
  // workload, checked against a serial reference each round.
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 7;
  config.num_injections = 10;
  const TransientCampaignResult reference = runner.RunTransientCampaign(config);
  config.num_workers = 0;  // all cores
  for (int round = 0; round < 3; ++round) {
    const TransientCampaignResult result = runner.RunTransientCampaign(config);
    ASSERT_EQ(result.injections.size(), reference.injections.size());
    for (std::size_t i = 0; i < result.injections.size(); ++i) {
      EXPECT_EQ(result.injections[i].params, reference.injections[i].params);
      EXPECT_EQ(result.injections[i].classification,
                reference.injections[i].classification);
    }
  }
}

TEST(Campaign, PermanentCampaignClampsZeroSmDevice) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.sm_id = -1;          // draw the SM per run...
  config.device.num_sms = 0;  // ...from a device with no SMs
  // The old code computed UniformInt(0, num_sms - 1) with num_sms == 0, a
  // 2^64-wide wrapped range; now the draw is clamped to SM 0.
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);
  ASSERT_FALSE(result.runs.empty());
  for (const PermanentRun& run : result.runs) {
    EXPECT_EQ(run.params.sm_id, 0);
  }
}

TEST(Campaign, NeverActivatedInjectionsAreCounted) {
  const MiniProgram program;
  // Pre-seed the cache with an inflated profile: every per-kernel opcode
  // count is 1000x reality, as a pathological approximate profile could be.
  // Selected instruction_counts then (almost) always exceed the real dynamic
  // population, so the injector arms but never fires.
  RunCache cache;
  const CampaignRunner plain(program);
  RunCache::ProfileEntry entry;
  entry.profile = plain.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{},
                                    &entry.run);
  for (KernelProfile& kernel : entry.profile.kernels) {
    for (std::uint64_t& count : kernel.opcode_counts) count *= 1000;
  }
  cache.PutProfile(program.name(), ProfilerTool::Mode::kExact, sim::DeviceProps{},
                   entry);

  const CampaignRunner runner(program, &cache);
  TransientCampaignConfig config;
  config.seed = 41;
  config.num_injections = 6;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);

  EXPECT_GE(result.never_activated, 5u);
  std::uint64_t not_activated = 0;
  for (const InjectionRun& run : result.injections) {
    EXPECT_FALSE(run.trivially_masked);  // a site *was* selected
    if (run.record.activated) continue;
    ++not_activated;
    // A never-fired injection corrupts nothing and must classify as Masked.
    EXPECT_FALSE(run.record.corrupted);
    EXPECT_EQ(run.classification.outcome, Outcome::kMasked);
    EXPECT_GT(run.artifacts.cycles, 0u);  // the run itself still happened
  }
  EXPECT_EQ(result.never_activated, not_activated);
}

TEST(Campaign, PermanentCampaignSweepsExecutedOpcodes) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 3;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);

  const auto executed = profile.ExecutedOpcodes();
  EXPECT_EQ(result.runs.size(), executed.size());
  EXPECT_EQ(result.executed_opcodes, executed.size());
  EXPECT_EQ(result.counts.total(), result.runs.size());

  double weight_sum = 0.0;
  for (const PermanentRun& run : result.runs) {
    EXPECT_GE(run.params.lane_id, 0);
    EXPECT_LT(run.params.lane_id, 32);
    EXPECT_NE(run.params.bit_mask, 0u);
    weight_sum += run.weight;
  }
  // Executed-opcode weights cover the whole dynamic instruction population.
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_NEAR(result.weighted.total(), 1.0, 1e-9);
}

TEST(Campaign, PermanentCampaignAllOpcodesMode) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kApproximate, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.only_executed_opcodes = false;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);
  EXPECT_EQ(result.runs.size(), static_cast<std::size_t>(sim::kOpcodeCount));
}

TEST(Campaign, PermanentCampaignDeterministic) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 31;
  const PermanentCampaignResult a = runner.RunPermanentCampaign(config, profile);
  const PermanentCampaignResult b = runner.RunPermanentCampaign(config, profile);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].params, b.runs[i].params);
    EXPECT_EQ(a.runs[i].activations, b.runs[i].activations);
    EXPECT_EQ(a.runs[i].classification, b.runs[i].classification);
  }
}

}  // namespace
}  // namespace nvbitfi::fi
