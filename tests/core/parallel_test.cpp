#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nvbitfi::fi {
namespace {

TEST(Parallel, ResolveWorkerCount) {
  EXPECT_GE(ResolveWorkerCount(0), 1);   // 0 = hardware concurrency
  EXPECT_GE(ResolveWorkerCount(-3), 1);
  EXPECT_EQ(ResolveWorkerCount(1), 1);
  // Explicit requests are honoured (oversubscription allowed) up to the cap.
  EXPECT_EQ(ResolveWorkerCount(8), 8);
  EXPECT_EQ(ResolveWorkerCount(1 << 20), 256);
}

TEST(Parallel, PoolSpawnsRequestedWorkers) {
  EXPECT_EQ(WorkerPool(8).workers(), 8);
  EXPECT_GE(WorkerPool(0).workers(), 1);
}

TEST(Parallel, SerialPoolRunsEveryTaskInOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  std::vector<std::size_t> order;
  pool.ParallelFor(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, EveryTaskRunsExactlyOnce) {
  WorkerPool pool(8);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, SlotResultsMatchSerial) {
  // Each task writes only its own slot, so the result vector is identical to
  // a serial loop's regardless of scheduling.
  std::vector<std::uint64_t> serial(300), parallel(300);
  const auto task = [](std::size_t i) { return i * i + 7; };
  WorkerPool one(1), many(6);
  one.ParallelFor(serial.size(), [&](std::size_t i) { serial[i] = task(i); });
  many.ParallelFor(parallel.size(), [&](std::size_t i) { parallel[i] = task(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, PoolIsReusableAcrossBatches) {
  WorkerPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.ParallelFor(50, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20u * (49u * 50u / 2u));
}

TEST(Parallel, ZeroTasksIsANoOp) {
  WorkerPool pool(4);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(Parallel, FirstExceptionPropagates) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         if (i == 31) throw std::runtime_error("task 31 failed");
                       }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> ran{0};
  pool.ParallelFor(10, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

// Thread-sanitizer-friendly stress: many small batches racing through the
// claim/finish paths with a shared accumulator per slot.
TEST(Parallel, StressManySmallBatches) {
  WorkerPool pool(0);  // all cores
  constexpr std::size_t kTasks = 200;
  std::vector<std::uint64_t> slots(kTasks, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(kTasks, [&](std::size_t i) { slots[i] += i + 1; });
  }
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(slots[i], 50u * (i + 1));
}

}  // namespace
}  // namespace nvbitfi::fi
