#include "core/profiler_tool.h"

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

ProgramProfile Profile(ProfilerTool::Mode mode) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  return runner.RunProfiler(mode, sim::DeviceProps{}, nullptr);
}

TEST(Profiler, ExactCountsEveryDynamicKernel) {
  const ProgramProfile p = Profile(ProfilerTool::Mode::kExact);
  EXPECT_FALSE(p.approximate);
  EXPECT_EQ(p.program_name, "mini");
  ASSERT_EQ(p.DynamicKernelCount(), 4u);  // 3x work + 1x tail
  EXPECT_EQ(p.StaticKernelCount(), 2u);
  for (int i = 0; i < testing::kWorkLaunches; ++i) {
    EXPECT_EQ(p.kernels[static_cast<std::size_t>(i)].kernel_name, "work");
    EXPECT_EQ(p.kernels[static_cast<std::size_t>(i)].kernel_count,
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(p.kernels[static_cast<std::size_t>(i)].Total(),
              testing::kWorkThreadInstructions);
  }
  EXPECT_EQ(p.kernels[3].kernel_name, "tail");
}

TEST(Profiler, ExactPerOpcodeCounts) {
  const ProgramProfile p = Profile(ProfilerTool::Mode::kExact);
  const KernelProfile& work = p.kernels[0];
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kS2R)], 32u);
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kFADD)], 32u);
  // The guarded IADD3 adds 16 thread executions on top of the unguarded 32.
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kIADD3)], 48u);
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kISETP)], 32u);
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kSTG)], 64u);
  EXPECT_EQ(work.opcode_counts[static_cast<std::size_t>(sim::Opcode::kEXIT)], 32u);
}

TEST(Profiler, PredicatedOffInstructionsExcluded) {
  // "Instructions that are not executed based on a predicate register are not
  // included in the profile": the tail kernel's post-guard body only counts
  // thread 0.
  const ProgramProfile p = Profile(ProfilerTool::Mode::kExact);
  const KernelProfile& tail = p.kernels[3];
  EXPECT_EQ(tail.opcode_counts[static_cast<std::size_t>(sim::Opcode::kMOV32I)], 1u);
  EXPECT_EQ(tail.opcode_counts[static_cast<std::size_t>(sim::Opcode::kSTG)], 1u);
  // 31 threads exit at the guarded EXIT; 1 thread reaches the final EXIT.
  EXPECT_EQ(tail.opcode_counts[static_cast<std::size_t>(sim::Opcode::kEXIT)], 32u);
}

TEST(Profiler, GroupPopulationMatchesHandCount) {
  const ProgramProfile p = Profile(ProfilerTool::Mode::kExact);
  EXPECT_EQ(p.kernels[0].GroupTotal(ArchStateId::kGGp), testing::kWorkGgpPopulation);
}

TEST(Profiler, ApproximateReplicatesFirstInstance) {
  const ProgramProfile exact = Profile(ProfilerTool::Mode::kExact);
  const ProgramProfile approx = Profile(ProfilerTool::Mode::kApproximate);
  EXPECT_TRUE(approx.approximate);
  ASSERT_EQ(approx.DynamicKernelCount(), exact.DynamicKernelCount());
  // The mini program's work instances are identical, so the approximate
  // profile must match the exact one entirely.
  EXPECT_EQ(approx.TotalInstructions(), exact.TotalInstructions());
  for (std::size_t i = 0; i < exact.kernels.size(); ++i) {
    EXPECT_EQ(approx.kernels[i].kernel_name, exact.kernels[i].kernel_name);
    EXPECT_EQ(approx.kernels[i].kernel_count, exact.kernels[i].kernel_count);
    EXPECT_EQ(approx.kernels[i].Total(), exact.kernels[i].Total());
  }
}

TEST(Profiler, ApproximateIsCheaperThanExact) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  RunArtifacts exact_run, approx_run;
  runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, &exact_run);
  runner.RunProfiler(ProfilerTool::Mode::kApproximate, sim::DeviceProps{}, &approx_run);
  EXPECT_LT(approx_run.cycles, exact_run.cycles);
}

TEST(Profiler, TakeProfileResets) {
  ProfilerTool tool("p", ProfilerTool::Mode::kExact);
  const ProgramProfile first = tool.TakeProfile();
  EXPECT_TRUE(first.kernels.empty());
  EXPECT_EQ(tool.profile().program_name, "p");
}

TEST(Profiler, ConfigKeysDifferPerMode) {
  ProfilerTool exact("p", ProfilerTool::Mode::kExact);
  ProfilerTool approx("p", ProfilerTool::Mode::kApproximate);
  EXPECT_NE(exact.ConfigKey(), approx.ConfigKey());
}

}  // namespace
}  // namespace nvbitfi::fi
