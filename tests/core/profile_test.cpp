#include "core/profile.h"

#include <gtest/gtest.h>

#include <map>

namespace nvbitfi::fi {
namespace {

KernelProfile MakeKernel(const std::string& name, std::uint64_t count,
                         std::initializer_list<std::pair<sim::Opcode, std::uint64_t>>
                             opcodes) {
  KernelProfile k;
  k.kernel_name = name;
  k.kernel_count = count;
  for (const auto& [op, n] : opcodes) {
    k.opcode_counts[static_cast<std::size_t>(op)] = n;
  }
  return k;
}

ProgramProfile MakeProfile() {
  ProgramProfile p;
  p.program_name = "unit";
  p.kernels.push_back(MakeKernel("a", 0,
                                 {{sim::Opcode::kFADD, 100},
                                  {sim::Opcode::kLDG, 50},
                                  {sim::Opcode::kISETP, 25},
                                  {sim::Opcode::kSTG, 10}}));
  p.kernels.push_back(MakeKernel("a", 1, {{sim::Opcode::kFADD, 200}}));
  p.kernels.push_back(MakeKernel("b", 0,
                                 {{sim::Opcode::kDADD, 40}, {sim::Opcode::kEXIT, 4}}));
  return p;
}

TEST(Profile, Totals) {
  const ProgramProfile p = MakeProfile();
  EXPECT_EQ(p.TotalInstructions(), 100u + 50 + 25 + 10 + 200 + 40 + 4);
  EXPECT_EQ(p.kernels[0].Total(), 185u);
  EXPECT_EQ(p.OpcodeTotal(sim::Opcode::kFADD), 300u);
  EXPECT_EQ(p.OpcodeTotal(sim::Opcode::kNOP), 0u);
}

TEST(Profile, GroupTotals) {
  const ProgramProfile p = MakeProfile();
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGFp32), 300u);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGFp64), 40u);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGLd), 50u);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGPr), 25u);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGNoDest), 14u);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGGppr), p.TotalInstructions() - 14);
  EXPECT_EQ(p.GroupTotal(ArchStateId::kGGp), p.TotalInstructions() - 14 - 25);
}

TEST(Profile, KernelCounts) {
  const ProgramProfile p = MakeProfile();
  EXPECT_EQ(p.StaticKernelCount(), 2u);
  EXPECT_EQ(p.DynamicKernelCount(), 3u);
}

TEST(Profile, ExecutedOpcodes) {
  const ProgramProfile p = MakeProfile();
  const auto executed = p.ExecutedOpcodes();
  EXPECT_EQ(executed.size(), 6u);
  for (const sim::Opcode op : executed) {
    EXPECT_GT(p.OpcodeTotal(op), 0u);
  }
}

TEST(Profile, SerializeParseRoundTrip) {
  const ProgramProfile p = MakeProfile();
  const auto back = ProgramProfile::Parse(p.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->program_name, "unit");
  EXPECT_FALSE(back->approximate);
  ASSERT_EQ(back->kernels.size(), 3u);
  EXPECT_EQ(back->kernels[0].kernel_name, "a");
  EXPECT_EQ(back->kernels[1].kernel_count, 1u);
  EXPECT_EQ(back->TotalInstructions(), p.TotalInstructions());
  EXPECT_EQ(back->OpcodeTotal(sim::Opcode::kDADD), 40u);
}

TEST(Profile, SerializeMarksApproximateMode) {
  ProgramProfile p = MakeProfile();
  p.approximate = true;
  const auto back = ProgramProfile::Parse(p.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->approximate);
}

TEST(Profile, ParseRejectsMalformed) {
  EXPECT_FALSE(ProgramProfile::Parse("").has_value());
  EXPECT_FALSE(ProgramProfile::Parse("kernel").has_value());          // no count
  EXPECT_FALSE(ProgramProfile::Parse("kernel x FADD=1").has_value()); // bad count
  EXPECT_FALSE(ProgramProfile::Parse("kernel 0 FROB=1").has_value()); // bad opcode
  EXPECT_FALSE(ProgramProfile::Parse("kernel 0 FADD=z").has_value()); // bad number
  EXPECT_FALSE(ProgramProfile::Parse("kernel 0 FADD").has_value());   // no '='
}

TEST(Profile, SelectTransientFaultRespectsGroup) {
  const ProgramProfile p = MakeProfile();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto params =
        SelectTransientFault(p, ArchStateId::kGFp64, BitFlipModel::kFlipSingleBit, rng);
    ASSERT_TRUE(params.has_value());
    EXPECT_EQ(params->kernel_name, "b");  // only b executes FP64
    EXPECT_EQ(params->kernel_count, 0u);
    EXPECT_LT(params->instruction_count, 40u);
    EXPECT_GE(params->destination_register, 0.0);
    EXPECT_LT(params->destination_register, 1.0);
    EXPECT_GE(params->bit_pattern_value, 0.0);
    EXPECT_LT(params->bit_pattern_value, 1.0);
  }
}

TEST(Profile, SelectTransientFaultEmptyGroup) {
  ProgramProfile p;
  p.kernels.push_back(MakeKernel("a", 0, {{sim::Opcode::kSTG, 10}}));
  Rng rng(1);
  EXPECT_FALSE(SelectTransientFault(p, ArchStateId::kGFp32, BitFlipModel::kZeroValue, rng)
                   .has_value());
  // But the no-dest group finds the stores.
  EXPECT_TRUE(SelectTransientFault(p, ArchStateId::kGNoDest, BitFlipModel::kZeroValue, rng)
                  .has_value());
}

TEST(Profile, SelectTransientFaultIsUniformAcrossKernels) {
  // Kernel a@0 has 100 FADDs, a@1 has 200: instance 1 should get ~2/3 of the
  // selections.
  const ProgramProfile p = MakeProfile();
  Rng rng(7);
  std::map<std::uint64_t, int> hits;
  for (int i = 0; i < 3000; ++i) {
    const auto params =
        SelectTransientFault(p, ArchStateId::kGFp32, BitFlipModel::kFlipSingleBit, rng);
    ASSERT_TRUE(params.has_value());
    ++hits[params->kernel_count];
  }
  EXPECT_NEAR(hits[0], 1000, 120);
  EXPECT_NEAR(hits[1], 2000, 120);
}

TEST(Profile, SelectTransientFaultDeterministicPerSeed) {
  const ProgramProfile p = MakeProfile();
  Rng a(99), b(99);
  for (int i = 0; i < 20; ++i) {
    const auto pa = SelectTransientFault(p, ArchStateId::kGGp, BitFlipModel::kRandomValue, a);
    const auto pb = SelectTransientFault(p, ArchStateId::kGGp, BitFlipModel::kRandomValue, b);
    ASSERT_TRUE(pa.has_value() && pb.has_value());
    EXPECT_EQ(*pa, *pb);
  }
}

}  // namespace
}  // namespace nvbitfi::fi
