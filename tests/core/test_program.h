// A tiny deterministic TargetProgram used across the core tests.
//
// Kernel "work" (one warp of 32 threads, launched 3 times):
//   index  instruction                         thread executions
//   0      S2R R0, SR_TID.X                    32
//   1      IADD3 R1, R0, 1, RZ                 32
//   2      FADD R2, RZ, 1.0f                   32
//   3      ISETP.GE.AND P0, PT, R0, 0x10, PT   32   (predicate only)
//   4      @P0 IADD3 R1, R1, 1, RZ             16   (lanes 16..31)
//   5      LDC.64 R4, c[0][0x160]              32
//   6      IMAD.WIDE R6, R0, 0x8, R4           32
//   7      STG.E.32 [R6], R1                   32   (no dest)
//   8      STG.E.32 [R6+4], R2                 32   (no dest)
//   9      EXIT                                32   (no dest)
//
// Per launch: 304 thread instructions; G_GP population 176 in the order
// S2R(0..31), IADD3(32..63), FADD(64..95), IADD3@P0(96..111), LDC(112..143),
// IMAD.WIDE(144..175).
//
// Kernel "tail" (1 thread, launched once) stores a constant marker.
#pragma once

#include <string>
#include <vector>

#include "core/target_program.h"
#include "sassim/runtime/driver.h"

namespace nvbitfi::fi::testing {

inline constexpr int kWorkLaunches = 3;
inline constexpr std::uint32_t kWorkThreads = 32;
inline constexpr std::uint64_t kWorkThreadInstructions = 304;
inline constexpr std::uint64_t kWorkGgpPopulation = 176;

class MiniProgram final : public TargetProgram {
 public:
  std::string name() const override { return "mini"; }

  RunArtifacts Run(sim::Context& ctx) const override {
    RunArtifacts art;
    static constexpr const char* kSource =
        ".kernel work\n"
        "  S2R R0, SR_TID.X ;\n"
        "  IADD3 R1, R0, 1, RZ ;\n"
        "  FADD R2, RZ, 0x3f800000 ;\n"
        "  ISETP.GE.AND P0, PT, R0, 0x10, PT ;\n"
        "  @P0 IADD3 R1, R1, 1, RZ ;\n"
        "  LDC.64 R4, c[0][0x160] ;\n"
        "  IMAD.WIDE R6, R0, 0x8, R4 ;\n"
        "  STG.E.32 [R6], R1 ;\n"
        "  STG.E.32 [R6+4], R2 ;\n"
        "  EXIT ;\n"
        ".endkernel\n"
        ".kernel tail\n"
        "  S2R R1, SR_TID.X ;\n"
        "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
        "  @P0 EXIT ;\n"
        "  LDC.64 R4, c[0][0x160] ;\n"
        "  MOV32I R6, 0x7777 ;\n"
        "  STG.E.32 [R4], R6 ;\n"
        "  EXIT ;\n"
        ".endkernel\n";

    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(kSource, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }

    constexpr std::uint32_t kBytesPerLaunch = kWorkThreads * 8;
    std::vector<sim::DevPtr> outputs;
    for (int i = 0; i < kWorkLaunches; ++i) {
      sim::DevPtr out = 0;
      ctx.MemAlloc(&out, kBytesPerLaunch);
      outputs.push_back(out);
      const std::uint64_t params[] = {out};
      ctx.LaunchKernel(ctx.GetFunction("work"), sim::Dim3{1, 1, 1},
                       sim::Dim3{kWorkThreads, 1, 1}, params);
    }
    sim::DevPtr marker = 0;
    ctx.MemAlloc(&marker, 16);
    {
      const std::uint64_t params[] = {marker};
      ctx.LaunchKernel(ctx.GetFunction("tail"), sim::Dim3{1, 1, 1},
                       sim::Dim3{32, 1, 1}, params);
    }

    std::uint64_t checksum = 0;
    for (const sim::DevPtr out : outputs) {
      std::vector<std::uint32_t> values(kWorkThreads * 2);
      ctx.MemcpyDtoH(values.data(), out, kBytesPerLaunch);
      for (const std::uint32_t v : values) checksum += v;
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
      art.output_file.insert(art.output_file.end(), bytes, bytes + kBytesPerLaunch);
    }
    std::uint32_t marker_value = 0;
    ctx.MemcpyDtoH(&marker_value, marker, 4);
    art.stdout_text = "mini checksum " + std::to_string(checksum) + " marker " +
                      std::to_string(marker_value) + "\n";
    return art;
  }
};

}  // namespace nvbitfi::fi::testing
