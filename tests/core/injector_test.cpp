#include "core/transient_injector.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "core/campaign.h"
#include "core/permanent_injector.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

// Runs the mini program with `tool` attached; returns the artifacts.
RunArtifacts RunWith(nvbit::Tool* tool) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  return runner.Execute(tool, sim::DeviceProps{}, /*watchdog=*/1 << 20);
}

TransientFaultParams WorkFault(std::uint64_t kernel_count, std::uint64_t instruction_count,
                               BitFlipModel model = BitFlipModel::kFlipSingleBit,
                               double dest = 0.0, double pattern = 0.99) {
  TransientFaultParams p;
  p.arch_state_id = ArchStateId::kGGp;
  p.bit_flip_model = model;
  p.kernel_name = "work";
  p.kernel_count = kernel_count;
  p.instruction_count = instruction_count;
  p.destination_register = dest;
  p.bit_pattern_value = pattern;
  return p;
}

TEST(TransientInjector, ActivatesAtTheExactSite) {
  // G_GP event 64 is the FADD on lane 0 of instance 1.
  TransientInjectorTool tool(WorkFault(1, 64));
  RunWith(&tool);
  const InjectionRecord& rec = tool.record();
  EXPECT_TRUE(rec.activated);
  EXPECT_TRUE(rec.corrupted);
  EXPECT_EQ(rec.kernel_name, "work");
  EXPECT_EQ(rec.kernel_count, 1u);
  EXPECT_EQ(rec.opcode, sim::Opcode::kFADD);
  EXPECT_EQ(rec.static_index, 2u);
  EXPECT_EQ(rec.lane_id, 0);
  EXPECT_EQ(rec.target_register, 2);  // FADD R2, ...
  EXPECT_EQ(rec.register_width, 32);
}

TEST(TransientInjector, LaneSelectionWithinTheCohort) {
  // Event 64 + 13 = FADD on lane 13.
  TransientInjectorTool tool(WorkFault(1, 64 + 13));
  RunWith(&tool);
  EXPECT_EQ(tool.record().lane_id, 13);
}

TEST(TransientInjector, SingleBitFlipChangesExactlyOneBit) {
  TransientInjectorTool tool(WorkFault(0, 70, BitFlipModel::kFlipSingleBit, 0.0, 0.4));
  RunWith(&tool);
  const InjectionRecord& rec = tool.record();
  ASSERT_TRUE(rec.corrupted);
  EXPECT_EQ(PopCount32(static_cast<std::uint32_t>(rec.before_bits ^ rec.after_bits)), 1);
  EXPECT_EQ(rec.mask, 1ull << static_cast<int>(32 * 0.4));
}

TEST(TransientInjector, ZeroValueZeroesTheRegister) {
  TransientInjectorTool tool(WorkFault(0, 70, BitFlipModel::kZeroValue));
  RunWith(&tool);
  const InjectionRecord& rec = tool.record();
  ASSERT_TRUE(rec.corrupted);
  EXPECT_EQ(rec.before_bits, FloatToBits(1.0f));  // FADD R2 = 1.0f
  EXPECT_EQ(rec.after_bits, 0u);
}

TEST(TransientInjector, RandomValueSetsTheRegister) {
  const double pattern = 0.33;
  TransientInjectorTool tool(WorkFault(0, 70, BitFlipModel::kRandomValue, 0.0, pattern));
  RunWith(&tool);
  EXPECT_EQ(tool.record().after_bits,
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(4294967295.0 * pattern)));
}

TEST(TransientInjector, PairDestinationIsCorruptedAs64Bit) {
  // G_GP events 144..175 are the IMAD.WIDE (pair destination R6:R7).
  TransientInjectorTool tool(WorkFault(0, 150, BitFlipModel::kFlipSingleBit, 0.0, 0.9));
  RunWith(&tool);
  const InjectionRecord& rec = tool.record();
  EXPECT_EQ(rec.opcode, sim::Opcode::kIMAD);
  EXPECT_EQ(rec.register_width, 64);
  EXPECT_EQ(rec.target_register, 6);
  EXPECT_EQ(rec.mask, 1ull << static_cast<int>(64 * 0.9));
}

TEST(TransientInjector, OnlyTargetInstanceIsAffected) {
  // Corrupt instance 1's stored R1 result; instances 0 and 2 stay golden.
  const MiniProgram program;
  const CampaignRunner runner(program);
  const RunArtifacts golden = runner.Execute(nullptr, sim::DeviceProps{}, 0);

  TransientInjectorTool tool(
      WorkFault(1, 40, BitFlipModel::kRandomValue, 0.0, 0.77));  // IADD3 lane 8
  const RunArtifacts faulty = RunWith(&tool);
  ASSERT_TRUE(tool.record().activated);

  // Output layout: 3 launches x 32 threads x 8 bytes.
  constexpr std::size_t kLaunchBytes = 32 * 8;
  ASSERT_EQ(faulty.output_file.size(), golden.output_file.size());
  const auto differs = [&](std::size_t launch) {
    return !std::equal(golden.output_file.begin() + static_cast<std::ptrdiff_t>(launch * kLaunchBytes),
                       golden.output_file.begin() + static_cast<std::ptrdiff_t>((launch + 1) * kLaunchBytes),
                       faulty.output_file.begin() + static_cast<std::ptrdiff_t>(launch * kLaunchBytes));
  };
  EXPECT_FALSE(differs(0));
  EXPECT_TRUE(differs(1));
  EXPECT_FALSE(differs(2));
}

TEST(TransientInjector, InjectsAtMostOnce) {
  TransientInjectorTool tool(WorkFault(0, 10));
  const MiniProgram program;
  const CampaignRunner runner(program);
  runner.Execute(&tool, sim::DeviceProps{}, 0);
  const InjectionRecord first = tool.record();
  EXPECT_TRUE(first.activated);
  // A second run with the same tool must not re-arm (done_ sticks).
  runner.Execute(&tool, sim::DeviceProps{}, 0);
  EXPECT_EQ(tool.record().before_bits, first.before_bits);
}

TEST(TransientInjector, MissedSiteIsNotActivated) {
  // instruction_count beyond the instance's population never fires.
  TransientInjectorTool tool(WorkFault(0, testing::kWorkGgpPopulation + 5));
  RunWith(&tool);
  EXPECT_FALSE(tool.record().activated);
}

TEST(TransientInjector, UnknownKernelNeverActivates) {
  TransientFaultParams p = WorkFault(0, 0);
  p.kernel_name = "nonexistent";
  TransientInjectorTool tool(p);
  RunWith(&tool);
  EXPECT_FALSE(tool.record().activated);
}

TEST(TransientInjector, NoDestGroupCorruptsASource) {
  TransientFaultParams p;
  p.arch_state_id = ArchStateId::kGNoDest;
  p.bit_flip_model = BitFlipModel::kFlipSingleBit;
  p.kernel_name = "work";
  p.kernel_count = 0;
  p.instruction_count = 0;  // first STG lane 0 (ISETP is G_PR, EXIT also counts)
  p.destination_register = 0.0;
  p.bit_pattern_value = 0.2;
  TransientInjectorTool tool(p);
  RunWith(&tool);
  ASSERT_TRUE(tool.record().activated);
  // The first no-dest event in the body is ISETP? No: ISETP writes a
  // predicate (G_PR), so the first G_NODEST event is the STG at index 7.
  EXPECT_EQ(tool.record().opcode, sim::Opcode::kSTG);
  EXPECT_TRUE(tool.record().corrupted);
}

TEST(TransientInjector, PredGroupCorruptsAPredicate) {
  TransientFaultParams p;
  p.arch_state_id = ArchStateId::kGPr;
  p.bit_flip_model = BitFlipModel::kFlipSingleBit;
  p.kernel_name = "work";
  p.kernel_count = 0;
  p.instruction_count = 20;  // ISETP lane 20
  p.destination_register = 0.0;
  p.bit_pattern_value = 0.5;
  TransientInjectorTool tool(p);
  RunWith(&tool);
  ASSERT_TRUE(tool.record().activated);
  EXPECT_EQ(tool.record().opcode, sim::Opcode::kISETP);
  EXPECT_TRUE(tool.record().pred_target);
  EXPECT_EQ(tool.record().target_register, 0);  // P0
  EXPECT_NE(tool.record().before_bits, tool.record().after_bits);
}

TEST(TransientInjector, RejectsInvalidParams) {
  TransientFaultParams p = WorkFault(0, 0);
  p.destination_register = 1.0;
  EXPECT_THROW(TransientInjectorTool{p}, std::logic_error);
  p.destination_register = 0.5;
  p.bit_pattern_value = -0.01;
  EXPECT_THROW(TransientInjectorTool{p}, std::logic_error);
}

// ---- permanent faults ----

TEST(PermanentInjector, CorruptsEveryInstanceOfTheOpcode) {
  PermanentFaultParams p;
  p.opcode_id = static_cast<int>(sim::Opcode::kFADD);
  p.sm_id = 0;
  p.lane_id = 5;
  p.bit_mask = 0x1;
  PermanentInjectorTool tool(p);
  RunWith(&tool);
  // FADD executes once per launch on lane 5 of SM 0; all 3 work launches run
  // block 0 on SM 0 (single-block grids), plus none in tail.
  EXPECT_EQ(tool.activations(), 3u);
}

TEST(PermanentInjector, LaneMaskingRestrictsActivations) {
  PermanentFaultParams p;
  p.opcode_id = static_cast<int>(sim::Opcode::kIADD3);
  p.sm_id = 0;
  p.lane_id = 20;  // lanes >= 16 also run the guarded IADD3
  p.bit_mask = 0x2;
  PermanentInjectorTool tool(p);
  RunWith(&tool);
  EXPECT_EQ(tool.activations(), 3u * 2u);  // two IADD3 executions per launch

  PermanentFaultParams q = p;
  q.lane_id = 3;  // below the guard threshold: only the unguarded IADD3
  PermanentInjectorTool tool2(q);
  RunWith(&tool2);
  EXPECT_EQ(tool2.activations(), 3u * 1u);
}

TEST(PermanentInjector, SmMaskingSuppressesOtherSms) {
  PermanentFaultParams p;
  p.opcode_id = static_cast<int>(sim::Opcode::kFADD);
  p.sm_id = 5;  // single-block launches always land on SM 0
  p.lane_id = 0;
  p.bit_mask = 0x1;
  PermanentInjectorTool tool(p);
  RunWith(&tool);
  EXPECT_EQ(tool.activations(), 0u);
}

TEST(PermanentInjector, UnusedOpcodeNeverActivates) {
  PermanentFaultParams p;
  p.opcode_id = static_cast<int>(sim::Opcode::kDADD);
  PermanentInjectorTool tool(p);
  const RunArtifacts run = RunWith(&tool);
  EXPECT_EQ(tool.activations(), 0u);
  EXPECT_EQ(run.exit_code, 0);
}

TEST(PermanentInjector, RejectsInvalidParams) {
  PermanentFaultParams p;
  p.opcode_id = 171;
  EXPECT_THROW(PermanentInjectorTool{p}, std::logic_error);
  p.opcode_id = 0;
  p.lane_id = 32;
  EXPECT_THROW(PermanentInjectorTool{p}, std::logic_error);
}

// ---- intermittent faults ----

TEST(IntermittentInjector, DutyCycleScalesActivations) {
  IntermittentFaultParams low;
  low.base.opcode_id = static_cast<int>(sim::Opcode::kS2R);
  low.base.sm_id = 0;
  low.base.lane_id = 0;
  low.base.bit_mask = 0x1;
  low.duty_cycle = 0.05;
  low.mean_burst_events = 2.0;
  low.seed = 7;
  IntermittentFaultParams high = low;
  high.duty_cycle = 0.95;

  IntermittentInjectorTool low_tool(low);
  RunWith(&low_tool);
  IntermittentInjectorTool high_tool(high);
  RunWith(&high_tool);

  EXPECT_EQ(low_tool.eligible_events(), high_tool.eligible_events());
  EXPECT_LT(low_tool.activations(), high_tool.activations());
  EXPECT_LE(high_tool.activations(), high_tool.eligible_events());
}

TEST(IntermittentInjector, DeterministicPerSeed) {
  IntermittentFaultParams p;
  p.base.opcode_id = static_cast<int>(sim::Opcode::kIADD3);
  p.duty_cycle = 0.5;
  p.seed = 99;
  IntermittentInjectorTool a(p), b(p);
  RunWith(&a);
  RunWith(&b);
  EXPECT_EQ(a.activations(), b.activations());
}

TEST(IntermittentInjector, RejectsInvalidDuty) {
  IntermittentFaultParams p;
  p.duty_cycle = 0.0;
  EXPECT_THROW(IntermittentInjectorTool{p}, std::logic_error);
  p.duty_cycle = 1.0;
  EXPECT_THROW(IntermittentInjectorTool{p}, std::logic_error);
}

}  // namespace
}  // namespace nvbitfi::fi
