#include "core/report.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "test_program.h"

namespace nvbitfi::fi {
namespace {

using testing::MiniProgram;

TransientCampaignResult RunSmallCampaign() {
  const MiniProgram program;
  const CampaignRunner runner(program);
  TransientCampaignConfig config;
  config.seed = 17;
  config.num_injections = 12;
  return runner.RunTransientCampaign(config);
}

TEST(Report, TransientTextReportStructure) {
  const TransientCampaignResult result = RunSmallCampaign();
  const std::string report = TransientCampaignReport(result, 0.90);
  EXPECT_NE(report.find("transient campaign report: mini"), std::string::npos);
  EXPECT_NE(report.find("injections: 12"), std::string::npos);
  EXPECT_NE(report.find("outcomes at 90% confidence"), std::string::npos);
  EXPECT_NE(report.find("SDC"), std::string::npos);
  EXPECT_NE(report.find("Masked"), std::string::npos);
  EXPECT_NE(report.find("symptoms:"), std::string::npos);
  EXPECT_NE(report.find("overheads:"), std::string::npos);
}

TEST(Report, TransientCsvHasOneRowPerInjection) {
  const TransientCampaignResult result = RunSmallCampaign();
  const std::string csv = TransientCampaignCsv(result);
  const auto lines = Split(csv, '\n');
  // Header + 12 rows + trailing empty field from the final newline.
  ASSERT_EQ(lines.size(), 14u);
  EXPECT_TRUE(StartsWith(lines[0], "index,kernel,kernel_count"));
  // Every data row has the full column count.
  const std::size_t columns = Split(lines[0], ',').size();
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(Split(lines[i], ',').size(), columns) << "row " << i << ": " << lines[i];
  }
}

TEST(Report, TransientCsvRowContentsMatchRuns) {
  const TransientCampaignResult result = RunSmallCampaign();
  const std::string csv = TransientCampaignCsv(result);
  const auto lines = Split(csv, '\n');
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    const auto fields = Split(lines[i + 1], ',');
    EXPECT_EQ(fields[0], std::to_string(i));
    EXPECT_EQ(fields[1], result.injections[i].params.kernel_name);
    EXPECT_EQ(fields[10],
              std::string(OutcomeName(result.injections[i].classification.outcome)));
  }
}

TEST(Report, PermanentReportAndCsv) {
  const MiniProgram program;
  const CampaignRunner runner(program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 4;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);

  const std::string report = PermanentCampaignReport(result);
  EXPECT_NE(report.find("permanent campaign report: mini"), std::string::npos);
  EXPECT_NE(report.find("weighted by opcode"), std::string::npos);

  const std::string csv = PermanentCampaignCsv(result);
  const auto lines = Split(csv, '\n');
  ASSERT_EQ(lines.size(), result.runs.size() + 2);  // header + rows + trailing
  EXPECT_TRUE(StartsWith(lines[0], "opcode,sm,lane,mask"));
  // Weights across rows sum to ~1 (executed opcodes cover the population).
  double weight_sum = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const auto fields = Split(lines[i], ',');
    double w = 0;
    ASSERT_TRUE(ParseDouble(fields[5], &w)) << lines[i];
    weight_sum += w;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-6);
}

TEST(Report, ConfidenceLevelChangesMargins) {
  const TransientCampaignResult result = RunSmallCampaign();
  const std::string narrow = TransientCampaignReport(result, 0.80);
  const std::string wide = TransientCampaignReport(result, 0.99);
  EXPECT_NE(narrow.find("80% confidence"), std::string::npos);
  EXPECT_NE(wide.find("99% confidence"), std::string::npos);
  EXPECT_NE(narrow, wide);
}

TEST(Report, CsvFieldQuotesPerRfc4180) {
  // Plain values pass through unquoted.
  EXPECT_EQ(CsvField("mriq_computeq"), "mriq_computeq");
  EXPECT_EQ(CsvField(""), "");
  // Commas, quotes, and line breaks force quoting; quotes double.
  EXPECT_EQ(CsvField("kernel<int, 4>"), "\"kernel<int, 4>\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvField("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(CsvField(",\",\n"), "\",\"\",\n\"");
}

TEST(Report, TransientCsvQuotesHostileKernelNames) {
  TransientCampaignResult result = RunSmallCampaign();
  ASSERT_FALSE(result.injections.empty());
  result.injections[0].params.kernel_name = "reduce<float, 128>";
  result.injections[1].params.kernel_name = "odd\"name";
  const std::string csv = TransientCampaignCsv(result);
  EXPECT_NE(csv.find("\"reduce<float, 128>\""), std::string::npos);
  EXPECT_NE(csv.find("\"odd\"\"name\""), std::string::npos);
  // The embedded comma really is inside a quoted field (a naive comma split
  // of that row sees one extra piece; an RFC 4180 reader sees the header's
  // column count).
  const auto lines = Split(csv, '\n');
  const std::size_t columns = Split(lines[0], ',').size();
  EXPECT_EQ(Split(lines[1], ',').size(), columns + 1);
}

}  // namespace
}  // namespace nvbitfi::fi
