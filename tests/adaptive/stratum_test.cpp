#include "adaptive/stratum.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/campaign.h"

namespace nvbitfi::adaptive {
namespace {

fi::TransientDraw DrawFor(const std::string& kernel) {
  fi::TransientDraw draw;
  fi::TransientFaultParams params;
  params.kernel_name = kernel;
  draw.params = params;
  return draw;
}

TEST(Stratum, OpcodeGroupLabelFollowsTableTwoPrecedence) {
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kDADD), "fp64");
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kFADD), "fp32");
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kLDG), "ld");
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kISETP), "pr");
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kSTG), "nodest");
  EXPECT_EQ(OpcodeGroupLabel(sim::Opcode::kIADD3), "other");
}

TEST(Stratum, NoSiteDrawsFormTheirOwnStratum) {
  const fi::ProgramProfile profile;
  std::vector<fi::TransientDraw> draws;
  draws.push_back(DrawFor("k"));
  draws.emplace_back();  // no params: trivially masked
  const Stratification s = StratifyPool(profile, draws, nullptr);
  ASSERT_EQ(s.num_strata(), 2u);
  EXPECT_EQ(s.labels[0], "(no-site)");
  EXPECT_EQ(s.labels[1], "k/?/unresolved");
  EXPECT_EQ(s.stratum_of[0], 1u);
  EXPECT_EQ(s.stratum_of[1], 0u);
}

TEST(Stratum, LabelsSortedAndMembersAscending) {
  const fi::ProgramProfile profile;
  std::vector<fi::TransientDraw> draws;
  for (const char* kernel : {"beta", "alpha", "beta", "alpha", "alpha"}) {
    draws.push_back(DrawFor(kernel));
  }
  const Stratification s = StratifyPool(profile, draws, nullptr);
  ASSERT_EQ(s.num_strata(), 2u);
  EXPECT_EQ(s.labels[0], "alpha/?/unresolved");
  EXPECT_EQ(s.labels[1], "beta/?/unresolved");
  EXPECT_EQ(s.members[0], (std::vector<std::uint64_t>{1, 3, 4}));
  EXPECT_EQ(s.members[1], (std::vector<std::uint64_t>{0, 2}));
  ASSERT_EQ(s.pool_size(), draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i) {
    const std::uint32_t id = s.stratum_of[i];
    const auto& members = s.members[id];
    EXPECT_NE(std::find(members.begin(), members.end(), i), members.end());
  }
}

TEST(Stratum, MaskingScoreBinsAreQuartiles) {
  EXPECT_EQ(MaskingScoreBin(0.0), 0);
  EXPECT_EQ(MaskingScoreBin(0.24), 0);
  EXPECT_EQ(MaskingScoreBin(0.25), 1);
  EXPECT_EQ(MaskingScoreBin(0.5), 2);
  EXPECT_EQ(MaskingScoreBin(0.75), 3);
  EXPECT_EQ(MaskingScoreBin(1.0), 3);  // clamped into the top bin
  EXPECT_EQ(MaskingScoreBinLabel(0), "m00");
  EXPECT_EQ(MaskingScoreBinLabel(1), "m25");
  EXPECT_EQ(MaskingScoreBinLabel(2), "m50");
  EXPECT_EQ(MaskingScoreBinLabel(3), "m75");
}

TEST(Stratum, NullOracleImportanceIsUniform) {
  // Unresolved draws carry full propagation potential; the trivially-masked
  // stratum gets the allocation floor.
  const fi::ProgramProfile profile;
  std::vector<fi::TransientDraw> draws;
  draws.push_back(DrawFor("k"));
  draws.emplace_back();  // (no-site)
  const Stratification s = StratifyPool(profile, draws, nullptr);
  ASSERT_EQ(s.importance.size(), 2u);
  EXPECT_GT(s.importance[0], 0.0);  // (no-site): floored, still allocatable
  EXPECT_LT(s.importance[0], 1.0);
  EXPECT_DOUBLE_EQ(s.importance[1], 1.0);  // unresolved
}

TEST(Stratum, StratificationIsDeterministic) {
  const fi::ProgramProfile profile;
  std::vector<fi::TransientDraw> draws;
  for (const char* kernel : {"a", "b", "c", "a", "b"}) {
    draws.push_back(DrawFor(kernel));
  }
  const Stratification first = StratifyPool(profile, draws, nullptr);
  const Stratification second = StratifyPool(profile, draws, nullptr);
  EXPECT_EQ(first.labels, second.labels);
  EXPECT_EQ(first.stratum_of, second.stratum_of);
  EXPECT_EQ(first.members, second.members);
}

}  // namespace
}  // namespace nvbitfi::adaptive
