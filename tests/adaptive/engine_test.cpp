#include "adaptive/engine.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace nvbitfi::adaptive {
namespace {

// Synthetic stratification: strata of the given sizes over a contiguous pool.
Stratification Strat(const std::vector<std::size_t>& sizes) {
  Stratification s;
  std::uint64_t index = 0;
  for (std::size_t id = 0; id < sizes.size(); ++id) {
    s.labels.push_back(Format("s%zu", id));
    s.members.emplace_back();
    for (std::size_t k = 0; k < sizes[id]; ++k) {
      s.members[id].push_back(index++);
      s.stratum_of.push_back(static_cast<std::uint32_t>(id));
    }
  }
  return s;
}

fi::Classification Masked() { return {}; }

fi::Classification Sdc() {
  fi::Classification c;
  c.outcome = fi::Outcome::kSdc;
  c.symptom = fi::Symptom::kStdoutDiff;
  return c;
}

// Observes a whole round with alternating Masked/SDC outcomes, which keeps
// every touched stratum's interval wide.
void ObserveMixed(AdaptiveEngine& engine, const RoundRecord& round) {
  bool flip = false;
  for (const std::uint64_t index : round.indexes) {
    engine.Observe(index, flip ? Sdc() : Masked());
    flip = !flip;
  }
}

void ExpectRoundsEqual(const RoundRecord& a, const RoundRecord& b) {
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_EQ(a.allocations[i].stratum, b.allocations[i].stratum);
    EXPECT_EQ(a.allocations[i].count, b.allocations[i].count);
  }
  EXPECT_EQ(a.indexes, b.indexes);
}

TEST(Engine, SeedingFloorTopsUpEveryStratumFirst) {
  AdaptivePolicy policy;
  policy.round_size = 12;
  policy.min_per_stratum = 4;
  AdaptiveEngine engine(Strat({10, 10, 10}), policy);
  const RoundRecord round = engine.PlanRound();
  ASSERT_EQ(round.allocations.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(round.allocations[s].stratum, s);
    EXPECT_EQ(round.allocations[s].count, 4u);
  }
  // Each stratum contributes its first four members, in allocation order.
  EXPECT_EQ(round.indexes,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23}));
}

TEST(Engine, UncertainStrataGetTheBudget) {
  AdaptivePolicy policy;
  policy.round_size = 20;
  policy.min_per_stratum = 4;
  policy.target_half_width = 0.25;
  AdaptiveEngine engine(Strat({100, 100}), policy);

  const RoundRecord seed = engine.PlanRound();
  // Stratum 0: all masked (narrow interval).  Stratum 1: mixed (wide).
  for (const std::uint64_t index : seed.indexes) {
    if (engine.stratification().stratum_of[index] == 0) {
      engine.Observe(index, Masked());
    } else {
      engine.Observe(index, engine.stratification().members[1][0] % 2 == index % 2
                                ? Sdc()
                                : Masked());
    }
  }
  const RoundRecord next = engine.PlanRound();
  std::uint64_t to_wide = 0;
  std::uint64_t to_narrow = 0;
  for (const RoundAllocation& allocation : next.allocations) {
    (allocation.stratum == 1 ? to_wide : to_narrow) += allocation.count;
  }
  EXPECT_GT(to_wide, to_narrow);
}

TEST(Engine, ConvergedStratumIsRetiredEarly) {
  AdaptivePolicy policy;
  policy.confidence = 0.90;
  policy.target_half_width = 0.20;
  policy.round_size = 10;
  policy.min_per_stratum = 0;
  AdaptiveEngine engine(Strat({1000}), policy);
  while (!engine.Done()) {
    const RoundRecord round = engine.PlanRound();
    ASSERT_FALSE(round.indexes.empty());
    for (const std::uint64_t index : round.indexes) engine.Observe(index, Masked());
  }
  EXPECT_TRUE(engine.StratumConverged(0));
  EXPECT_FALSE(engine.StratumExhausted(0));
  // Uniformly masked outcomes converge long before the pool runs out.
  EXPECT_LT(engine.total_scheduled(), 100u);
  ExpectRoundsEqual(engine.PlanRound(), RoundRecord{});
}

TEST(Engine, ExhaustedStratumEndsTheCampaign) {
  AdaptivePolicy policy;
  policy.target_half_width = 0.01;  // unreachable with 5 samples
  policy.round_size = 2;
  policy.min_per_stratum = 0;
  AdaptiveEngine engine(Strat({5}), policy);
  while (!engine.Done()) {
    const RoundRecord round = engine.PlanRound();
    ASSERT_FALSE(round.indexes.empty());
    ObserveMixed(engine, round);
  }
  EXPECT_TRUE(engine.StratumExhausted(0));
  EXPECT_FALSE(engine.StratumConverged(0));
  EXPECT_EQ(engine.total_scheduled(), 5u);
}

TEST(Engine, PlanningIsDeterministic) {
  AdaptivePolicy policy;
  policy.round_size = 7;
  AdaptiveEngine a(Strat({9, 3, 14}), policy);
  AdaptiveEngine b(Strat({9, 3, 14}), policy);
  for (int round = 0; round < 3; ++round) {
    const RoundRecord ra = a.PlanRound();
    const RoundRecord rb = b.PlanRound();
    ExpectRoundsEqual(ra, rb);
    if (ra.indexes.empty()) break;
    ObserveMixed(a, ra);
    ObserveMixed(b, rb);
  }
}

TEST(Engine, AdoptRoundReplaysAPlannedSchedule) {
  AdaptivePolicy policy;
  policy.round_size = 8;
  AdaptiveEngine planner(Strat({6, 6}), policy);
  AdaptiveEngine resumer(Strat({6, 6}), policy);

  const RoundRecord first = planner.PlanRound();
  std::string error;
  ASSERT_TRUE(resumer.AdoptRound(first, &error)) << error;
  ObserveMixed(planner, first);
  ObserveMixed(resumer, first);

  // After adopting the same prefix, both engines plan the same continuation.
  ExpectRoundsEqual(planner.PlanRound(), resumer.PlanRound());
}

TEST(Engine, AdoptRoundRejectsForeignSchedules) {
  AdaptivePolicy policy;
  policy.round_size = 4;
  policy.min_per_stratum = 2;
  AdaptiveEngine planner(Strat({8, 8}), policy);
  const RoundRecord good = planner.PlanRound();
  std::string error;

  RoundRecord unknown = good;
  unknown.allocations[0].stratum = 9;
  EXPECT_FALSE(AdaptiveEngine(Strat({8, 8}), policy).AdoptRound(unknown, &error));

  RoundRecord unsorted = good;
  std::swap(unsorted.allocations[0], unsorted.allocations[1]);
  EXPECT_FALSE(AdaptiveEngine(Strat({8, 8}), policy).AdoptRound(unsorted, &error));

  RoundRecord overrun = good;
  overrun.allocations[0].count = 100;
  EXPECT_FALSE(AdaptiveEngine(Strat({8, 8}), policy).AdoptRound(overrun, &error));

  RoundRecord wrong_index = good;
  wrong_index.indexes[0] = 7;  // stratum 0 must start at member 0
  EXPECT_FALSE(AdaptiveEngine(Strat({8, 8}), policy).AdoptRound(wrong_index, &error));

  RoundRecord trailing = good;
  trailing.indexes.push_back(15);
  EXPECT_FALSE(AdaptiveEngine(Strat({8, 8}), policy).AdoptRound(trailing, &error));
}

TEST(Engine, ImportanceDefaultsToOneWithoutAVector) {
  AdaptivePolicy policy;
  AdaptiveEngine engine(Strat({4, 4}), policy);
  EXPECT_DOUBLE_EQ(engine.StratumImportance(0), 1.0);
  EXPECT_DOUBLE_EQ(engine.StratumImportance(1), 1.0);
}

TEST(Engine, ImportanceWeightsSkewTheBudget) {
  // Two strata with identical (all-wide) uncertainty: the one with 4x the
  // importance weight must receive about 4x the budget.
  AdaptivePolicy policy;
  policy.round_size = 20;
  policy.min_per_stratum = 0;
  Stratification strat = Strat({100, 100});
  strat.importance = {0.2, 0.8};
  AdaptiveEngine engine(std::move(strat), policy);
  const RoundRecord round = engine.PlanRound();
  std::uint64_t to_light = 0;
  std::uint64_t to_heavy = 0;
  for (const RoundAllocation& allocation : round.allocations) {
    (allocation.stratum == 1 ? to_heavy : to_light) += allocation.count;
  }
  EXPECT_EQ(to_light + to_heavy, 20u);
  EXPECT_EQ(to_light, 4u);
  EXPECT_EQ(to_heavy, 16u);
}

TEST(Engine, ImportanceWeightedPlanningIsDeterministic) {
  AdaptivePolicy policy;
  policy.round_size = 7;
  Stratification sa = Strat({9, 3, 14});
  sa.importance = {0.05, 1.0, 0.5};
  Stratification sb = sa;
  AdaptiveEngine a(std::move(sa), policy);
  AdaptiveEngine b(std::move(sb), policy);
  for (int round = 0; round < 3; ++round) {
    const RoundRecord ra = a.PlanRound();
    const RoundRecord rb = b.PlanRound();
    ExpectRoundsEqual(ra, rb);
    if (ra.indexes.empty()) break;
    ObserveMixed(a, ra);
    ObserveMixed(b, rb);
  }
}

TEST(Engine, OutcomeUncertaintyIsOneBeforeData) {
  EXPECT_DOUBLE_EQ(OutcomeUncertainty(fi::OutcomeCounts{}, 0.95), 1.0);
  fi::OutcomeCounts counts;
  counts.masked = 1000;
  EXPECT_LT(OutcomeUncertainty(counts, 0.95), 0.01);
}

}  // namespace
}  // namespace nvbitfi::adaptive
