#include "adaptive/report.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "adaptive/engine.h"

namespace nvbitfi::adaptive {
namespace {

StratumRow Row(const std::string& label, std::uint64_t masked, std::uint64_t sdc,
               std::uint64_t due) {
  StratumRow row;
  row.label = label;
  row.counts.masked = masked;
  row.counts.sdc = sdc;
  row.counts.due = due;
  row.scheduled = masked + sdc + due;
  row.population = row.scheduled * 2;
  return row;
}

TEST(AdaptiveReport, StrataReportListsEveryStratumWithState) {
  std::vector<StratumRow> rows;
  rows.push_back(Row("k/fp32/live", 10, 5, 1));
  rows.back().converged = true;
  rows.push_back(Row("k/ld/live", 3, 0, 0));
  rows.back().exhausted = true;
  rows.push_back(Row("k/other/dead", 4, 0, 0));

  const std::string report = StrataReport(rows, 0.95, 0.10);
  EXPECT_NE(report.find("strata at 95% confidence (Wilson):"), std::string::npos);
  EXPECT_NE(report.find("k/fp32/live"), std::string::npos);
  EXPECT_NE(report.find("converged"), std::string::npos);
  EXPECT_NE(report.find("exhausted"), std::string::npos);
  EXPECT_NE(report.find("width"), std::string::npos);  // the unconverged stratum
}

TEST(AdaptiveReport, StrataCsvQuotesRfc4180) {
  std::vector<StratumRow> rows;
  rows.push_back(Row("weird,kernel\"name/pr/live", 2, 1, 0));
  const std::string csv = StrataCsv(rows, 0.95);
  // Header + one data row.
  ASSERT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_EQ(csv.find("stratum,population,scheduled,runs,masked,sdc,due"), 0u);
  // Comma and quote in the label force quoting with doubled quotes.
  EXPECT_NE(csv.find("\"weird,kernel\"\"name/pr/live\""), std::string::npos);
}

TEST(AdaptiveReport, CsvRatesAndBoundsAreConsistent) {
  std::vector<StratumRow> rows;
  rows.push_back(Row("k/fp32/live", 30, 10, 0));
  const std::string csv = StrataCsv(rows, 0.95);
  // 40 runs, 10 SDCs: the rate column carries 0.25 with Wilson bounds around it.
  EXPECT_NE(csv.find(",0.250000,"), std::string::npos);
}

TEST(AdaptiveReport, EngineRowsAndSummaryMirrorEngineState) {
  Stratification stratification;
  stratification.labels = {"only"};
  stratification.members = {{0, 1, 2, 3, 4, 5, 6, 7}};
  stratification.stratum_of.assign(8, 0);
  AdaptivePolicy policy;
  policy.confidence = 0.90;
  policy.target_half_width = 0.45;
  policy.round_size = 4;
  policy.min_per_stratum = 0;
  AdaptiveEngine engine(std::move(stratification), policy);
  const RoundRecord round = engine.PlanRound();
  for (const std::uint64_t index : round.indexes) {
    engine.Observe(index, fi::Classification{});
  }

  const std::vector<StratumRow> rows = EngineRows(engine);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].label, "only");
  EXPECT_EQ(rows[0].population, 8u);
  EXPECT_EQ(rows[0].scheduled, 4u);
  EXPECT_EQ(rows[0].counts.masked, 4u);

  const std::string summary = AdaptiveSummary(engine);
  EXPECT_NE(summary.find("adaptive: 1 rounds"), std::string::npos);
  EXPECT_NE(summary.find("4/8 pool experiments scheduled"), std::string::npos);
}

}  // namespace
}  // namespace nvbitfi::adaptive
