#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/transient_injector.h"
#include "workloads/workloads.h"

namespace nvbitfi::baselines {
namespace {

// A shared fault specification on 303.ostencil for all three mechanisms.
fi::TransientFaultParams SharedFault() {
  fi::TransientFaultParams p;
  p.arch_state_id = fi::ArchStateId::kGGp;
  p.bit_flip_model = fi::BitFlipModel::kFlipSingleBit;
  p.kernel_name = "ostencil_step";
  p.kernel_count = 7;
  p.instruction_count = 5000;
  p.destination_register = 0.0;
  p.bit_pattern_value = 0.35;
  return p;
}

struct MechanismResult {
  fi::InjectionRecord record;
  fi::RunArtifacts artifacts;
};

template <typename Tool>
MechanismResult RunMechanism() {
  const fi::TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*program);
  Tool tool(SharedFault());
  MechanismResult result;
  result.artifacts = runner.Execute(&tool, sim::DeviceProps{}, /*watchdog=*/0);
  result.record = tool.record();
  return result;
}

TEST(Baselines, AllMechanismsInjectTheIdenticalFault) {
  const MechanismResult nvbitfi = RunMechanism<fi::TransientInjectorTool>();
  const MechanismResult sassifi = RunMechanism<StaticInjectorTool>();
  const MechanismResult gpuqin = RunMechanism<DebuggerInjectorTool>();

  ASSERT_TRUE(nvbitfi.record.activated);
  ASSERT_TRUE(sassifi.record.activated);
  ASSERT_TRUE(gpuqin.record.activated);

  // Identical architectural fault: same instruction, register, mask, lane.
  for (const MechanismResult* other : {&sassifi, &gpuqin}) {
    EXPECT_EQ(other->record.static_index, nvbitfi.record.static_index);
    EXPECT_EQ(other->record.opcode, nvbitfi.record.opcode);
    EXPECT_EQ(other->record.target_register, nvbitfi.record.target_register);
    EXPECT_EQ(other->record.mask, nvbitfi.record.mask);
    EXPECT_EQ(other->record.lane_id, nvbitfi.record.lane_id);
    EXPECT_EQ(other->record.before_bits, nvbitfi.record.before_bits);
  }

  // And therefore identical program-level behaviour.
  EXPECT_EQ(sassifi.artifacts.stdout_text, nvbitfi.artifacts.stdout_text);
  EXPECT_EQ(gpuqin.artifacts.stdout_text, nvbitfi.artifacts.stdout_text);
  EXPECT_EQ(sassifi.artifacts.output_file, nvbitfi.artifacts.output_file);
  EXPECT_EQ(gpuqin.artifacts.output_file, nvbitfi.artifacts.output_file);
}

TEST(Baselines, OverheadOrderingMatchesTableI) {
  const fi::TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});

  const MechanismResult nvbitfi = RunMechanism<fi::TransientInjectorTool>();
  const MechanismResult sassifi = RunMechanism<StaticInjectorTool>();
  const MechanismResult gpuqin = RunMechanism<DebuggerInjectorTool>();

  // Dynamic selectivity beats always-on static instrumentation, which beats
  // debugger single-stepping — the mechanism ranking behind Table I.
  EXPECT_GT(nvbitfi.artifacts.cycles, golden.cycles);
  EXPECT_GT(sassifi.artifacts.cycles, nvbitfi.artifacts.cycles);
  EXPECT_GT(gpuqin.artifacts.cycles, sassifi.artifacts.cycles);
}

TEST(Baselines, DebuggerSingleStepsEveryDynamicInstruction) {
  const fi::TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});

  DebuggerInjectorTool tool(SharedFault());
  runner.Execute(&tool, sim::DeviceProps{}, 0);
  // The debugger traps every instruction of every launch, including the
  // predicated-off ones (its events >= the golden thread-instruction count).
  EXPECT_GE(tool.single_steps(), golden.thread_instructions);
}

TEST(Baselines, StaticInjectorInstrumentsAllLaunches) {
  // Unlike NVBitFI, the static injector pays instrumentation on every launch:
  // its run must be strictly slower than NVBitFI's even though both only
  // inject once.
  const MechanismResult nvbitfi = RunMechanism<fi::TransientInjectorTool>();
  const MechanismResult sassifi = RunMechanism<StaticInjectorTool>();
  EXPECT_GT(static_cast<double>(sassifi.artifacts.cycles),
            1.2 * static_cast<double>(nvbitfi.artifacts.cycles));
}

}  // namespace
}  // namespace nvbitfi::baselines
