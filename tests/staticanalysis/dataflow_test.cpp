// Liveness and reaching-definitions on hand-written CFG shapes: diamond,
// loop, unreachable tail, and predicate-partial definition, with the expected
// live-in/live-out sets asserted per block.
#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"
#include "staticanalysis/liveness.h"
#include "staticanalysis/reaching_defs.h"

namespace nvbitfi::staticanalysis {
namespace {

using sim::AssembleKernelOrDie;

// The exact set of live GPRs in `set` among R0..R15 (the tests only use low
// registers, so equality over this window is equality of the whole set).
std::vector<int> LiveGprs(const RegSet& set) {
  std::vector<int> live;
  for (int r = 0; r < 16; ++r) {
    if (set.TestGpr(r)) live.push_back(r);
  }
  return live;
}

TEST(Liveness, Diamond) {
  //   B0: [0,2)  cond + branch     B1: [2,4)  then: R2 = R0 + R1
  //   B2: [4,5)  else: R2 = R1*2   B3: [5,7)  join: reads R2
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  @!P0 BRA alt ;\n"
                          "  FADD R2, R0, R1 ;\n"
                          "  BRA join ;\n"
                          "alt:\n"
                          "  FADD R2, R1, R1 ;\n"
                          "join:\n"
                          "  FADD R3, R2, R2 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  const std::uint32_t b0 = liveness.cfg().BlockOf(0);
  const std::uint32_t b1 = liveness.cfg().BlockOf(2);
  const std::uint32_t b2 = liveness.cfg().BlockOf(4);
  const std::uint32_t b3 = liveness.cfg().BlockOf(5);

  EXPECT_EQ(LiveGprs(liveness.LiveIn(b0)), (std::vector<int>{0, 1}));
  EXPECT_FALSE(liveness.LiveIn(b0).TestPred(0));  // P0 defined before its use
  EXPECT_EQ(LiveGprs(liveness.LiveOut(b0)), (std::vector<int>{0, 1}));

  EXPECT_EQ(LiveGprs(liveness.LiveIn(b1)), (std::vector<int>{0, 1}));
  EXPECT_EQ(LiveGprs(liveness.LiveOut(b1)), (std::vector<int>{2}));
  EXPECT_EQ(LiveGprs(liveness.LiveIn(b2)), (std::vector<int>{1}));
  EXPECT_EQ(LiveGprs(liveness.LiveOut(b2)), (std::vector<int>{2}));

  EXPECT_EQ(LiveGprs(liveness.LiveIn(b3)), (std::vector<int>{2}));
  EXPECT_TRUE(liveness.LiveOut(b3).Empty());  // nothing lives past EXIT

  // Instruction-level view inside B0: P0 is live between its definition and
  // the guarded branch that reads it.
  EXPECT_TRUE(liveness.LiveOutAt(0).TestPred(0));
  EXPECT_FALSE(liveness.LiveOutAt(1).TestPred(0));
}

TEST(Liveness, LoopCarriedRegisters) {
  //   B0: [0,1)  init     B1: [1,4)  body (back edge)     B2: [4,6)  exit
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  MOV R1, RZ ;\n"
                          "loop:\n"
                          "  FADD R1, R1, R2 ;\n"
                          "  ISETP.LT.AND P0, PT, R1, R3, PT ;\n"
                          "  @P0 BRA loop ;\n"
                          "  MOV R4, R1 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  const std::uint32_t b0 = liveness.cfg().BlockOf(0);
  const std::uint32_t b1 = liveness.cfg().BlockOf(1);
  const std::uint32_t b2 = liveness.cfg().BlockOf(4);

  // The loop inputs R2 (addend) and R3 (bound) are live into the kernel; the
  // accumulator R1 is not (defined at instruction 0 before any read).
  EXPECT_EQ(LiveGprs(liveness.LiveIn(b0)), (std::vector<int>{2, 3}));
  // Around the back edge all three survive, plus the accumulator.
  EXPECT_EQ(LiveGprs(liveness.LiveIn(b1)), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(LiveGprs(liveness.LiveOut(b1)), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(LiveGprs(liveness.LiveIn(b2)), (std::vector<int>{1}));
  EXPECT_TRUE(liveness.LiveOut(b2).Empty());
}

TEST(Liveness, UnreachableTailStaysEmpty) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  BRA end ;\n"
                                                       "  FADD R5, R5, R5 ;\n"
                                                       "end:\n"
                                                       "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  ASSERT_FALSE(liveness.cfg().InstructionReachable(1));
  // The unreachable read of R5 must not leak into any live set.
  EXPECT_TRUE(liveness.LiveInAt(1).Empty());
  EXPECT_TRUE(liveness.LiveIn(liveness.cfg().entry()).Empty());
}

TEST(Liveness, GuardedDefinitionDoesNotKill) {
  // @P0 MOV R2, R3 may not execute, so the incoming R2 can still be read at
  // instruction 2: R2 must be live into the kernel.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  @P0 MOV R2, R3 ;\n"
                          "  FADD R4, R2, R2 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  EXPECT_EQ(LiveGprs(liveness.LiveIn(liveness.cfg().entry())),
            (std::vector<int>{0, 1, 2, 3}));

  // The unguarded variant kills R2: only the real inputs remain live-in.
  const sim::KernelSource unguarded =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  MOV R2, R3 ;\n"
                          "  FADD R4, R2, R2 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis unguarded_liveness(unguarded);
  EXPECT_EQ(LiveGprs(unguarded_liveness.LiveIn(unguarded_liveness.cfg().entry())),
            (std::vector<int>{0, 1, 3}));
}

TEST(ReachingDefs, EntryDefsOnPartiallyDefiningPaths) {
  // R2 is defined on the taken path only, so the entry (pseudo) definition
  // of R2 still reaches the join — the signal behind the read-before-def
  // lint.  R3 is defined on both paths, so it does not.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  @!P0 BRA alt ;\n"
                          "  MOV R2, R0 ;\n"
                          "  MOV R3, R0 ;\n"
                          "  BRA join ;\n"
                          "alt:\n"
                          "  MOV R3, R1 ;\n"
                          "join:\n"
                          "  FADD R4, R2, R3 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  const ReachingDefsAnalysis reaching(kernel, liveness.cfg());
  const std::uint32_t join = 6;
  ASSERT_EQ(kernel.instructions[join].opcode, sim::Opcode::kFADD);
  EXPECT_TRUE(reaching.EntryDefReaches(join, /*is_pred=*/false, 2));
  EXPECT_FALSE(reaching.EntryDefReaches(join, /*is_pred=*/false, 3));
  // R0/R1 are read at instruction 0 with no definition at all.
  EXPECT_TRUE(reaching.EntryDefReaches(0, /*is_pred=*/false, 0));
}

TEST(ReachingDefs, GuardedDefKillsEntryPseudoSite) {
  // A guarded write counts as a definition for the read-before-def signal
  // (the -Wmaybe-uninitialized convention): @P0 MOV R2 suppresses R2's entry
  // pseudo-site even though liveness treats the write as a may-def only.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  @P0 MOV R2, R0 ;\n"
                          "  FADD R4, R2, R2 ;\n"
                          "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  const ReachingDefsAnalysis reaching(kernel, liveness.cfg());
  EXPECT_FALSE(reaching.EntryDefReaches(2, /*is_pred=*/false, 2));

  // The guarded definition site itself reaches the read.
  const SiteSet at_read = reaching.ReachingAt(2);
  bool guarded_site_reaches = false;
  for (std::uint32_t s = 0; s < reaching.sites().size(); ++s) {
    const ReachingDefsAnalysis::DefSite& site = reaching.sites()[s];
    if (site.instr == 1 && !site.is_pred && site.reg == 2) {
      guarded_site_reaches = at_read.Test(s);
    }
  }
  EXPECT_TRUE(guarded_site_reaches);
}

}  // namespace
}  // namespace nvbitfi::staticanalysis
