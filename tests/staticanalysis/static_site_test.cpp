#include "staticanalysis/static_site.h"

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/corruption.h"
#include "sassim/asm/assembler.h"
#include "workloads/workloads.h"

namespace nvbitfi::staticanalysis {
namespace {

using sim::AssembleKernelOrDie;

// A kernel with one clearly-dead and one clearly-live GPR destination:
//   0: MOV R2, RZ       dead  (R2 is overwritten at 1 before any read)
//   1: MOV R2, RZ       live  (R2 is stored at 2)
//   2: STG.E.32 [RZ], R2
//   3: EXIT
sim::KernelSource DeadLiveKernel() {
  return AssembleKernelOrDie("deadlive",
                             "  MOV R2, RZ ;\n"
                             "  MOV R2, RZ ;\n"
                             "  STG.E.32 [RZ], R2 ;\n"
                             "  EXIT ;\n");
}

TEST(StaticSite, EvaluateStaticDistinguishesDeadAndLive) {
  const StaticSiteAnalysis analysis({DeadLiveKernel()});
  const fi::StaticSiteVerdict dead = analysis.EvaluateStatic("deadlive", 0, 0.0);
  EXPECT_TRUE(dead.resolved);
  EXPECT_TRUE(dead.statically_dead);
  EXPECT_TRUE(dead.has_target);
  EXPECT_FALSE(dead.pred_target);
  EXPECT_EQ(dead.target_register, 2);

  const fi::StaticSiteVerdict live = analysis.EvaluateStatic("deadlive", 1, 0.0);
  EXPECT_TRUE(live.resolved);
  EXPECT_FALSE(live.statically_dead);
}

TEST(StaticSite, NoTargetSiteIsDeadByConstruction) {
  // EXIT has no destination and no source registers: the corruption draw
  // selects nothing and the fault vanishes.
  const StaticSiteAnalysis analysis({DeadLiveKernel()});
  ASSERT_TRUE(fi::CandidateTargets(DeadLiveKernel().instructions[3]).empty());
  const fi::StaticSiteVerdict verdict = analysis.EvaluateStatic("deadlive", 3, 0.5);
  EXPECT_TRUE(verdict.resolved);
  EXPECT_TRUE(verdict.statically_dead);
  EXPECT_FALSE(verdict.has_target);
}

TEST(StaticSite, ClockDependentKernelIsNeverDead) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("clocked",
                          "  S2R R2, SR_CLOCKLO ;\n"
                          "  MOV R2, RZ ;\n"
                          "  MOV R2, RZ ;\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  const StaticSiteAnalysis analysis({kernel});
  // Instruction 1 is a dead store, but the kernel reads the cycle counter:
  // its output is instrumentation-dependent, so no site may claim "masked".
  const fi::StaticSiteVerdict verdict = analysis.EvaluateStatic("clocked", 1, 0.0);
  EXPECT_TRUE(verdict.resolved);
  EXPECT_FALSE(verdict.statically_dead);
}

TEST(StaticSite, CrossLaneSourceIsNeverDead) {
  // R2 dies after the SHFL gather per-lane, but other lanes may still read
  // this lane's R2 through the collective — the hazard set keeps it live.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("shfl",
                          "  S2R R2, SR_TID.X ;\n"
                          "  SHFL.DOWN R3, R2, 0x1, 0x1f ;\n"
                          "  STG.E.32 [RZ], R3 ;\n"
                          "  EXIT ;\n");
  const StaticSiteAnalysis analysis({kernel});
  const fi::StaticSiteVerdict gather = analysis.EvaluateStatic("shfl", 0, 0.0);
  ASSERT_TRUE(gather.resolved);
  EXPECT_EQ(gather.target_register, 2);
  EXPECT_FALSE(gather.statically_dead);
}

TEST(StaticSite, UnknownKernelOrIndexIsUnresolvedOrLive) {
  const StaticSiteAnalysis analysis({DeadLiveKernel()});
  EXPECT_FALSE(analysis.EvaluateStatic("nope", 0, 0.0).resolved);
  const fi::StaticSiteVerdict oob = analysis.EvaluateStatic("deadlive", 99, 0.0);
  EXPECT_FALSE(oob.resolved && oob.statically_dead);
  EXPECT_EQ(analysis.FindKernel("deadlive")->kernel.name, "deadlive");
  EXPECT_EQ(analysis.FindKernel("nope"), nullptr);
}

// Campaign-level properties on a real workload.  Group 5 (G_NODEST: stores
// and branches) is where fallback source targets die, so pruning has mass.
class StaticCampaign : public ::testing::Test {
 protected:
  fi::TransientCampaignConfig BaseConfig() const {
    fi::TransientCampaignConfig config;
    config.seed = 77;
    config.num_injections = 24;
    config.group = fi::ArchStateId::kGNoDest;
    return config;
  }
  const fi::TargetProgram* program_ = workloads::FindWorkload("314.omriq");
};

TEST_F(StaticCampaign, CheckModeReportsNoViolations) {
  ASSERT_NE(program_, nullptr);
  const StaticSiteAnalysis oracle =
      StaticSiteAnalysis::ForProgram(*program_, sim::DeviceProps{});
  const fi::CampaignRunner runner(*program_);
  fi::TransientCampaignConfig config = BaseConfig();
  config.static_mode = fi::StaticSiteMode::kCheck;
  config.static_oracle = &oracle;
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);
  EXPECT_GT(result.statically_checked, 0u);
  EXPECT_GT(result.statically_dead, 0u);  // group 5 draws hit dead sites
  EXPECT_TRUE(result.static_violations.empty())
      << result.static_violations.size() << " violations, first: "
      << result.static_violations.front().detail;
  EXPECT_EQ(result.statically_pruned, 0u);  // check mode simulates everything
}

TEST_F(StaticCampaign, PruneModePreservesOutcomesExactly) {
  ASSERT_NE(program_, nullptr);
  const StaticSiteAnalysis oracle =
      StaticSiteAnalysis::ForProgram(*program_, sim::DeviceProps{});
  const fi::CampaignRunner runner(*program_);

  const fi::TransientCampaignResult baseline =
      runner.RunTransientCampaign(BaseConfig());

  fi::TransientCampaignConfig pruned_config = BaseConfig();
  pruned_config.static_mode = fi::StaticSiteMode::kPrune;
  pruned_config.static_oracle = &oracle;
  const fi::TransientCampaignResult pruned =
      runner.RunTransientCampaign(pruned_config);

  EXPECT_GT(pruned.statically_pruned, 0u);
  EXPECT_EQ(pruned.counts.masked, baseline.counts.masked);
  EXPECT_EQ(pruned.counts.sdc, baseline.counts.sdc);
  EXPECT_EQ(pruned.counts.due, baseline.counts.due);
  EXPECT_EQ(pruned.counts.potential_due, baseline.counts.potential_due);

  // Per-experiment agreement, not just aggregate: same params, and every
  // pruned run's synthesized verdict matches what the simulation produced.
  ASSERT_EQ(pruned.injections.size(), baseline.injections.size());
  for (std::size_t i = 0; i < pruned.injections.size(); ++i) {
    const fi::InjectionRun& p = pruned.injections[i];
    const fi::InjectionRun& b = baseline.injections[i];
    ASSERT_EQ(p.trivially_masked, b.trivially_masked) << "experiment " << i;
    if (p.trivially_masked) continue;
    EXPECT_EQ(p.params, b.params) << "experiment " << i;
    EXPECT_TRUE(p.classification == b.classification) << "experiment " << i;
    if (p.statically_masked) {
      EXPECT_EQ(p.record.static_index, b.record.static_index) << "experiment " << i;
      EXPECT_EQ(p.record.corrupted, b.record.corrupted) << "experiment " << i;
    }
  }
}

TEST_F(StaticCampaign, DeadFractionMatchesCheckModeRate) {
  ASSERT_NE(program_, nullptr);
  const StaticSiteAnalysis oracle =
      StaticSiteAnalysis::ForProgram(*program_, sim::DeviceProps{});
  const fi::CampaignRunner runner(*program_);
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  const double fraction = oracle.DeadFraction(profile, fi::ArchStateId::kGNoDest);
  EXPECT_GT(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
  // The default group (GPR writers) prunes next to nothing on this workload.
  const double gp_fraction = oracle.DeadFraction(profile, fi::ArchStateId::kGGp);
  EXPECT_LT(gp_fraction, fraction);
}

TEST_F(StaticCampaign, ApproximateProfileLeavesSitesUnresolved) {
  ASSERT_NE(program_, nullptr);
  const StaticSiteAnalysis oracle =
      StaticSiteAnalysis::ForProgram(*program_, sim::DeviceProps{});
  const fi::CampaignRunner runner(*program_);
  fi::TransientCampaignConfig config = BaseConfig();
  config.profiling = fi::ProfilerTool::Mode::kApproximate;
  config.static_mode = fi::StaticSiteMode::kCheck;
  config.static_oracle = &oracle;
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);
  // No exact site stream -> nothing resolves, nothing is asserted.
  EXPECT_EQ(result.statically_checked, 0u);
  EXPECT_TRUE(result.static_violations.empty());
}

}  // namespace
}  // namespace nvbitfi::staticanalysis
