// Bit-granular liveness: table-driven transfer-function tests against the
// executor's documented semantics, and the soundness property over every
// bundled workload kernel — a bit can only be live if the register-level
// analysis says its register is live (bit-liveness REFINES liveness).
#include "staticanalysis/bitliveness.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "sassim/asm/assembler.h"
#include "staticanalysis/liveness.h"
#include "staticanalysis/static_site.h"
#include "workloads/workloads.h"

namespace nvbitfi::staticanalysis {
namespace {

using sim::AssembleKernelOrDie;

sim::Instruction FirstInstr(const std::string& line) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t", line + "\n  EXIT ;\n");
  return kernel.instructions.at(0);
}

BitLiveSet LiveSetWithGpr(int reg, std::uint32_t mask) {
  BitLiveSet live;
  live.AddGprBits(reg, mask);
  return live;
}

struct Expect {
  int reg;
  std::uint32_t mask;
};

struct TransferCase {
  const char* name;
  const char* line;        // one instruction writing R3
  std::uint32_t live_out;  // live bits of R3 after it
  std::vector<Expect> want;  // exact live-in masks; unlisted regs must be 0
};

class BitTransferTable : public ::testing::TestWithParam<TransferCase> {};

TEST_P(BitTransferTable, DemandsMatchExecutorSemantics) {
  const TransferCase& tc = GetParam();
  const sim::Instruction inst = FirstInstr(tc.line);
  const BitLiveSet live_in = BitTransfer(inst, LiveSetWithGpr(3, tc.live_out));
  for (int r = 0; r < 16; ++r) {
    std::uint32_t want = 0;
    for (const Expect& e : tc.want) {
      if (e.reg == r) want = e.mask;
    }
    EXPECT_EQ(live_in.GprBits(r), want) << "R" << r << " in " << tc.line;
  }
}

const TransferCase kTransferCases[] = {
    // Copies are bit-transparent; the destination's own bits are killed.
    {"mov", "  MOV R3, R1 ;", 0x0000F00Fu, {{1, 0x0000F00Fu}}},
    {"i2i_is_a_copy", "  I2I R3, R1 ;", 0xDEADBEEFu, {{1, 0xDEADBEEFu}}},
    // AND with an immediate: bits the mask clears cannot propagate.
    {"and_imm", "  LOP32I.AND R3, R1, 0xFF00 ;", 0x0000FFFFu, {{1, 0x0000FF00u}}},
    // OR with an immediate: bits the mask forces to one cannot propagate.
    {"or_imm", "  LOP32I.OR R3, R1, 0xFF ;", 0x0000FFFFu, {{1, 0x0000FF00u}}},
    // XOR flips but never blocks.
    {"xor_imm", "  LOP32I.XOR R3, R1, 0xFF ;", 0x000000F0u, {{1, 0x000000F0u}}},
    // Constant shift amounts map demands bit-exactly.
    {"shl_const", "  SHL R3, R1, 0x8 ;", 0x0000FF00u, {{1, 0x000000FFu}}},
    {"shr_unsigned_const", "  SHR.U32 R3, R1, 0x8 ;", 0x000000FFu, {{1, 0x0000FF00u}}},
    // Arithmetic right shift replicates the sign bit into the vacated
    // window: a live vacated bit demands bit 31 even after its own source
    // bit shifted out.
    {"shr_signed_sign_fill", "  SHR R3, R1, 0x8 ;", 0x01000000u, {{1, 0x80000000u}}},
    // LOP3 majority (0xe8): every input can flip the output.
    {"lop3_majority",
     "  LOP3 R3, R1, R2, R4, 0xe8 ;",
     0x1u,
     {{1, 0x1u}, {2, 0x1u}, {4, 0x1u}}},
    // LOP3 a&b (0xc0) with b = 0xFF known: a is demanded where b is set, c
    // never matters.
    {"lop3_and_known_imm",
     "  LOP3 R3, R1, 0xFF, R4, 0xc0 ;",
     0x0000FFFFu,
     {{1, 0x000000FFu}, {4, 0u}}},
    // Carries propagate strictly upward: demands stop at the highest live
    // result bit.
    {"iadd3_cone", "  IADD3 R3, R1, R2, RZ ;", 0x10u, {{1, 0x1Fu}, {2, 0x1Fu}}},
    // Bit reversal is a permutation.
    {"brev", "  BREV R3, R1 ;", 0x1u, {{1, 0x80000000u}}},
    // PRMT byte-reverse selector: live byte 0 demands pool byte 3.
    {"prmt_byte_reverse",
     "  PRMT R3, R1, 0x0123, RZ ;",
     0x000000FFu,
     {{1, 0xFF000000u}}},
    // Unmodeled fp arithmetic falls back to full-width demands.
    {"fadd_fallback",
     "  FADD R3, R1, R2 ;",
     0x1u,
     {{1, 0xFFFFFFFFu}, {2, 0xFFFFFFFFu}}},
};

std::string CaseName(const ::testing::TestParamInfo<TransferCase>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Ops, BitTransferTable, ::testing::ValuesIn(kTransferCases),
                         CaseName);

TEST(BitTransfer, SubWordStoreDemandsOnlyLowBytes) {
  const sim::Instruction inst = FirstInstr("  STG.E.U8 [R2], R4 ;");
  const BitLiveSet live_in = BitTransfer(inst, BitLiveSet{});
  EXPECT_EQ(live_in.GprBits(2), 0xFFFFFFFFu);  // 64-bit address pair
  EXPECT_EQ(live_in.GprBits(3), 0xFFFFFFFFu);
  EXPECT_EQ(live_in.GprBits(4), 0x000000FFu);  // only the stored byte
}

TEST(BitTransfer, DeadDestinationComparisonDemandsNothing) {
  // Once the destination predicates are dead, the comparison's sources are
  // not demanded — this gating is what bit-kills comparison inputs.
  const sim::Instruction inst = FirstInstr("  ISETP.LT.AND P0, PT, R1, R2, PT ;");
  const BitLiveSet live_in = BitTransfer(inst, BitLiveSet{});
  EXPECT_TRUE(live_in.Empty());
}

TEST(BitTransfer, LivePredicateComparisonDemandsSourcesFully) {
  const sim::Instruction inst = FirstInstr("  ISETP.LT.AND P0, PT, R1, R2, PT ;");
  BitLiveSet live_out;
  live_out.AddPred(0);
  const BitLiveSet live_in = BitTransfer(inst, live_out);
  EXPECT_EQ(live_in.GprBits(1), 0xFFFFFFFFu);
  EXPECT_EQ(live_in.GprBits(2), 0xFFFFFFFFu);
  EXPECT_FALSE(live_in.TestPred(0));  // the write kills it
}

TEST(BitTransfer, GuardedWriteNeverKills) {
  const sim::KernelSource kernel = AssembleKernelOrDie(
      "t",
      "  ISETP.LT.AND P1, PT, RZ, RZ, PT ;\n"
      "  @P1 MOV R3, R1 ;\n"
      "  EXIT ;\n");
  const sim::Instruction guarded = kernel.instructions.at(1);
  const BitLiveSet live_in = BitTransfer(guarded, LiveSetWithGpr(3, 0xFu));
  EXPECT_EQ(live_in.GprBits(3), 0xFu);  // the write may be suppressed
  EXPECT_EQ(live_in.GprBits(1), 0xFu);
  EXPECT_TRUE(live_in.TestPred(1));
}

TEST(BitTransfer, NeverExecutedGuardIsIdentity) {
  const sim::Instruction inst = FirstInstr("  @!PT MOV R3, R1 ;");
  const BitLiveSet live_out = LiveSetWithGpr(3, 0xFFu);
  EXPECT_EQ(BitTransfer(inst, live_out), live_out);
}

TEST(BitLivenessAnalysis, MaskThenStoreKillsHighBits) {
  // The AND 0xFF between the producer and the consumer makes the producer's
  // high 24 bits statically dead at the kAfter point.
  const sim::KernelSource kernel = AssembleKernelOrDie(
      "t",
      "  S2R R1, SR_TID.X ;\n"
      "  LOP32I.AND R2, R1, 0xFF ;\n"
      "  STG.E.32 [RZ], R2 ;\n"
      "  EXIT ;\n");
  const LivenessAnalysis liveness(kernel);
  const BitLivenessAnalysis bits(kernel, liveness.cfg());
  // After the S2R (instruction 0) R1 is register-live but only its low byte
  // is bit-live.
  EXPECT_TRUE(liveness.LiveOutAt(0).TestGpr(1));
  EXPECT_EQ(bits.LiveOutAt(0).GprBits(1), 0x000000FFu);
  // After the AND, all 32 bits of R2 feed the 32-bit store.
  EXPECT_EQ(bits.LiveOutAt(1).GprBits(2), 0xFFFFFFFFu);
}

// ---- Soundness property over every bundled workload ----

class BitLivenessSuite : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(BitLivenessSuite, BitLivenessRefinesRegisterLiveness) {
  const workloads::WorkloadEntry& entry = GetParam();
  const std::vector<sim::KernelSource> kernels =
      HarvestKernels(*entry.program, sim::DeviceProps{});
  ASSERT_FALSE(kernels.empty());
  std::uint64_t strictly_finer = 0;
  for (const sim::KernelSource& kernel : kernels) {
    const LivenessAnalysis liveness(kernel);
    const BitLivenessAnalysis bits(kernel, liveness.cfg());
    for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
      for (int r = 0; r < sim::kRZ; ++r) {
        const std::uint32_t in_mask = bits.LiveInAt(i).GprBits(r);
        const std::uint32_t out_mask = bits.LiveOutAt(i).GprBits(r);
        if (in_mask != 0) {
          EXPECT_TRUE(liveness.LiveInAt(i).TestGpr(r))
              << kernel.name << ":" << i << " R" << r
              << " bit-live-in without register liveness";
        }
        if (out_mask != 0) {
          EXPECT_TRUE(liveness.LiveOutAt(i).TestGpr(r))
              << kernel.name << ":" << i << " R" << r
              << " bit-live-out without register liveness";
        }
        if (liveness.LiveOutAt(i).TestGpr(r) && out_mask != 0xFFFFFFFFu) {
          ++strictly_finer;
        }
      }
      for (int p = 0; p < sim::kPT; ++p) {
        if (bits.LiveInAt(i).TestPred(p)) {
          EXPECT_TRUE(liveness.LiveInAt(i).TestPred(p))
              << kernel.name << ":" << i << " P" << p;
        }
        if (bits.LiveOutAt(i).TestPred(p)) {
          EXPECT_TRUE(liveness.LiveOutAt(i).TestPred(p))
              << kernel.name << ":" << i << " P" << p;
        }
      }
    }
  }
  // Not a hard guarantee per program, but across the bundled workloads the
  // analysis should refine SOMETHING; tracked per-program for visibility.
  RecordProperty("strictly_finer_sites", static_cast<int>(strictly_finer));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, BitLivenessSuite,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::staticanalysis
