#include "staticanalysis/cfg.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"

namespace nvbitfi::staticanalysis {
namespace {

using sim::AssembleKernelOrDie;

// Block id containing instruction `index`, asserting it exists.
std::uint32_t BlockAt(const ControlFlowGraph& cfg, std::uint32_t index) {
  const std::uint32_t b = cfg.BlockOf(index);
  EXPECT_NE(b, kNoBlock) << "instruction " << index << " has no block";
  return b;
}

TEST(Cfg, StraightLineIsOneBlock) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  MOV R1, RZ ;\n"
                                                       "  FADD R2, R1, R1 ;\n"
                                                       "  EXIT ;\n");
  const ControlFlowGraph cfg = ControlFlowGraph::Build(kernel);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  const BasicBlock& block = cfg.blocks()[0];
  EXPECT_EQ(block.begin, 0u);
  EXPECT_EQ(block.end, 3u);
  EXPECT_TRUE(block.reachable);
  EXPECT_TRUE(block.succ.empty());
  EXPECT_EQ(cfg.entry(), 0u);
  EXPECT_EQ(block.idom, 0u);  // entry dominates itself
}

TEST(Cfg, DiamondBlocksEdgesAndDominators) {
  //   B0: cond + branch   B1: then   B2: else   B3: join
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, R0, R1, PT ;\n"
                          "  @!P0 BRA alt ;\n"
                          "  FADD R2, R0, R1 ;\n"
                          "  BRA join ;\n"
                          "alt:\n"
                          "  FADD R2, R1, R1 ;\n"
                          "join:\n"
                          "  FADD R3, R2, R2 ;\n"
                          "  EXIT ;\n");
  const ControlFlowGraph cfg = ControlFlowGraph::Build(kernel);
  ASSERT_EQ(cfg.blocks().size(), 4u);
  const std::uint32_t b0 = BlockAt(cfg, 0);
  const std::uint32_t b1 = BlockAt(cfg, 2);
  const std::uint32_t b2 = BlockAt(cfg, 4);
  const std::uint32_t b3 = BlockAt(cfg, 5);

  EXPECT_EQ(cfg.blocks()[b0].succ, (std::vector<std::uint32_t>{b2, b1}));
  EXPECT_EQ(cfg.blocks()[b1].succ, std::vector<std::uint32_t>{b3});
  EXPECT_EQ(cfg.blocks()[b2].succ, std::vector<std::uint32_t>{b3});
  EXPECT_EQ(cfg.blocks()[b3].pred.size(), 2u);
  for (const BasicBlock& block : cfg.blocks()) EXPECT_TRUE(block.reachable);

  // The branch dominates both arms and the join; neither arm dominates the
  // join.
  EXPECT_TRUE(cfg.Dominates(b0, b1));
  EXPECT_TRUE(cfg.Dominates(b0, b2));
  EXPECT_TRUE(cfg.Dominates(b0, b3));
  EXPECT_FALSE(cfg.Dominates(b1, b3));
  EXPECT_FALSE(cfg.Dominates(b2, b3));
  EXPECT_EQ(cfg.blocks()[b3].idom, b0);
  EXPECT_EQ(cfg.rpo().front(), b0);
}

TEST(Cfg, LoopBackEdge) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  MOV R1, RZ ;\n"
                          "loop:\n"
                          "  FADD R1, R1, R2 ;\n"
                          "  ISETP.LT.AND P0, PT, R1, R3, PT ;\n"
                          "  @P0 BRA loop ;\n"
                          "  EXIT ;\n");
  const ControlFlowGraph cfg = ControlFlowGraph::Build(kernel);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const std::uint32_t body = BlockAt(cfg, 1);
  const std::uint32_t exit = BlockAt(cfg, 4);
  // The loop body is its own successor (back edge) and falls through to exit.
  EXPECT_EQ(cfg.blocks()[body].succ, (std::vector<std::uint32_t>{body, exit}));
  EXPECT_TRUE(cfg.Dominates(body, exit));
}

TEST(Cfg, UnreachableTail) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  BRA end ;\n"
                                                       "  FADD R5, R5, R5 ;\n"
                                                       "  NOP ;\n"
                                                       "end:\n"
                                                       "  EXIT ;\n");
  const ControlFlowGraph cfg = ControlFlowGraph::Build(kernel);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  EXPECT_TRUE(cfg.InstructionReachable(0));
  EXPECT_FALSE(cfg.InstructionReachable(1));
  EXPECT_FALSE(cfg.InstructionReachable(2));
  EXPECT_TRUE(cfg.InstructionReachable(3));
  const std::uint32_t dead = BlockAt(cfg, 1);
  EXPECT_FALSE(cfg.blocks()[dead].reachable);
  EXPECT_EQ(cfg.blocks()[dead].idom, kNoBlock);
  // RPO enumerates only reachable blocks.
  EXPECT_EQ(cfg.rpo().size(), 2u);
}

TEST(Cfg, GuardRefinedBranchEdges) {
  // @PT BRA is unconditional: no fallthrough edge, so the next instruction
  // is unreachable.  @!PT BRA never fires: fallthrough only.
  const sim::KernelSource taken = AssembleKernelOrDie("t",
                                                      "  @PT BRA end ;\n"
                                                      "  NOP ;\n"
                                                      "end:\n"
                                                      "  EXIT ;\n");
  const ControlFlowGraph taken_cfg = ControlFlowGraph::Build(taken);
  EXPECT_FALSE(taken_cfg.InstructionReachable(1));

  const sim::KernelSource never = AssembleKernelOrDie("t",
                                                      "  @!PT BRA end ;\n"
                                                      "  NOP ;\n"
                                                      "end:\n"
                                                      "  EXIT ;\n");
  const ControlFlowGraph never_cfg = ControlFlowGraph::Build(never);
  EXPECT_TRUE(never_cfg.InstructionReachable(1));
  const std::uint32_t entry = never_cfg.entry();
  // No taken edge: the entry block's only successor chain is fallthrough.
  for (const std::uint32_t s : never_cfg.blocks()[entry].succ) {
    EXPECT_EQ(never_cfg.blocks()[s].begin, never_cfg.blocks()[entry].end);
  }
}

TEST(Cfg, ControlEffects) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  FADD R1, R1, R1 ;\n"
                          "  @P3 BRA end ;\n"
                          "  EXIT ;\n"
                          "end:\n"
                          "  EXIT ;\n");
  const ControlEffect plain = ControlEffectOf(kernel.instructions[0]);
  EXPECT_FALSE(plain.terminates_block);
  EXPECT_TRUE(plain.has_fallthrough);
  EXPECT_FALSE(plain.has_taken_edge);

  const ControlEffect branch = ControlEffectOf(kernel.instructions[1]);
  EXPECT_TRUE(branch.terminates_block);
  EXPECT_TRUE(branch.has_taken_edge);
  EXPECT_TRUE(branch.has_fallthrough);  // real guard: both outcomes possible
  EXPECT_EQ(branch.target, 3u);

  const ControlEffect exit_effect = ControlEffectOf(kernel.instructions[2]);
  EXPECT_TRUE(exit_effect.terminates_block);
  EXPECT_FALSE(exit_effect.has_taken_edge);
  EXPECT_FALSE(exit_effect.has_fallthrough);
}

TEST(Cfg, OutOfRangeBranchTargetHasNoEdge) {
  // A branch past the end of the body traps at execution time; the CFG gives
  // it no taken edge rather than inventing a block.
  sim::KernelSource kernel = sim::AssembleKernelOrDie("t",
                                                      "  BRA end ;\n"
                                                      "end:\n"
                                                      "  EXIT ;\n");
  kernel.instructions[0].src[0].imm = 99;  // rewrite the target out of range
  const ControlFlowGraph cfg = ControlFlowGraph::Build(kernel);
  const std::uint32_t entry = cfg.entry();
  EXPECT_TRUE(cfg.blocks()[entry].succ.empty());
}

}  // namespace
}  // namespace nvbitfi::staticanalysis
