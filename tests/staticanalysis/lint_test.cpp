#include "staticanalysis/lint.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"

namespace nvbitfi::staticanalysis {
namespace {

using sim::AssembleKernelOrDie;

std::size_t CountKind(const std::vector<LintFinding>& findings, LintKind kind) {
  std::size_t count = 0;
  for (const LintFinding& f : findings) {
    if (f.kind == kind) ++count;
  }
  return count;
}

TEST(Lint, CleanKernelHasNoFindings) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R0, SR_TID.X ;\n"
                          "  FADD R1, R0, R0 ;\n"
                          "  ISETP.LT.AND P0, PT, R1, R0, PT ;\n"
                          "  @P0 FADD R1, R1, R1 ;\n"
                          "  STG.E.32 [RZ], R1 ;\n"
                          "  EXIT ;\n");
  EXPECT_TRUE(LintKernel(kernel).empty());
}

TEST(Lint, ReadBeforeDef) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  FADD R2, R0, R1 ;\n"
                                                       "  STG.E.32 [RZ], R2 ;\n"
                                                       "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  EXPECT_EQ(CountKind(findings, LintKind::kReadBeforeDef), 2u);  // R0 and R1
}

TEST(Lint, ReadBeforeDefOnOnePathOnly) {
  // R2 is defined only when the branch is not taken; the join still reads it.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R0, SR_TID.X ;\n"
                          "  ISETP.LT.AND P0, PT, R0, R0, PT ;\n"
                          "  @P0 BRA join ;\n"
                          "  MOV R2, R0 ;\n"
                          "join:\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kReadBeforeDef), 1u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kReadBeforeDef) continue;
    EXPECT_EQ(f.instr_index, 4u);
    EXPECT_NE(f.message.find("R2"), std::string::npos);
  }
}

TEST(Lint, UnreachableBlock) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  BRA end ;\n"
                                                       "  NOP ;\n"
                                                       "end:\n"
                                                       "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  EXPECT_EQ(CountKind(findings, LintKind::kUnreachableBlock), 1u);
}

TEST(Lint, DeadStore) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  MOV R3, RZ ;\n"
                                                       "  FADD R2, R3, R3 ;\n"
                                                       "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, LintKind::kDeadStore);
  EXPECT_EQ(findings[0].instr_index, 1u);  // R2 is never read
}

TEST(Lint, GuardedOverwriteIsNotADeadStore) {
  // The unguarded write at 1 looks dead on the path where the guarded write
  // at 2 executes, but the guard may fail — conservatively not a dead store.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P0, PT, RZ, RZ, PT ;\n"
                          "  MOV R2, RZ ;\n"
                          "  @P0 MOV R2, RZ ;\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  EXPECT_TRUE(LintKernel(kernel).empty());
}

TEST(Lint, ConstantGuards) {
  const sim::KernelSource kernel = AssembleKernelOrDie("t",
                                                       "  @!PT NOP ;\n"
                                                       "  @P3 NOP ;\n"
                                                       "  @!P4 NOP ;\n"
                                                       "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kConstantGuard), 3u);
  EXPECT_NE(findings.size(), 0u);
  bool saw_never = false, saw_always = false, saw_not_pt = false;
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kConstantGuard) continue;
    if (f.message.find("never taken") != std::string::npos) saw_never = true;
    if (f.message.find("always taken") != std::string::npos) saw_always = true;
    if (f.message.find("@!PT") != std::string::npos) saw_not_pt = true;
  }
  EXPECT_TRUE(saw_never);   // @P3 with P3 never written
  EXPECT_TRUE(saw_always);  // @!P4 with P4 never written
  EXPECT_TRUE(saw_not_pt);  // @!PT never executes
}

TEST(Lint, WrittenGuardIsNotConstant) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  ISETP.LT.AND P3, PT, RZ, RZ, PT ;\n"
                          "  @P3 NOP ;\n"
                          "  EXIT ;\n");
  EXPECT_EQ(CountKind(LintKernel(kernel), LintKind::kConstantGuard), 0u);
}

TEST(Lint, SharedOutOfRange) {
  const sim::KernelSource kernel =
      sim::Assemble(
          ".kernel t shared=16\n"
          "  MOV R0, RZ ;\n"
          "  STS [RZ+0x8], R0 ;\n"   // [8, 12) fits
          "  STS [RZ+0x10], R0 ;\n"  // [16, 20) is out of range
          "  LDS.64 R2, [RZ+0xc] ;\n"  // [12, 20) straddles the end
          "  STG.E.32 [RZ], R2 ;\n"
          "  EXIT ;\n"
          ".endkernel\n")
          .kernels.at(0);
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kSharedOutOfRange), 2u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kSharedOutOfRange) continue;
    EXPECT_TRUE(f.instr_index == 2u || f.instr_index == 3u);
  }
}

TEST(Lint, DynamicSharedAddressIsNotFlagged) {
  const sim::KernelSource kernel =
      sim::Assemble(
          ".kernel t shared=16\n"
          "  S2R R1, SR_TID.X ;\n"
          "  STS [R1+0x100], R1 ;\n"  // dynamic base: offset alone says nothing
          "  EXIT ;\n"
          ".endkernel\n")
          .kernels.at(0);
  EXPECT_EQ(CountKind(LintKernel(kernel), LintKind::kSharedOutOfRange), 0u);
}

TEST(Lint, RedundantAndMask) {
  // R1 already feeds only an 8-bit store, so AND 0xFFFF clears no live bit.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  LOP32I.AND R2, R1, 0xFFFF ;\n"
                          "  STG.E.U8 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kRedundantMask), 1u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kRedundantMask) continue;
    EXPECT_EQ(f.instr_index, 1u);
    EXPECT_NE(f.message.find("AND"), std::string::npos);
  }
}

TEST(Lint, EffectiveAndMaskIsNotRedundant) {
  // The same AND before a 32-bit store genuinely clears live bits.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  LOP32I.AND R2, R1, 0xFFFF ;\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  EXPECT_EQ(CountKind(LintKernel(kernel), LintKind::kRedundantMask), 0u);
}

TEST(Lint, RedundantOrMask) {
  // OR with bits that are only read back through an AND that drops them.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  LOP32I.OR R2, R1, 0xFF000000 ;\n"
                          "  LOP32I.AND R4, R2, 0xFFFF ;\n"
                          "  STG.E.32 [RZ], R4 ;\n"
                          "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kRedundantMask), 1u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kRedundantMask) continue;
    EXPECT_EQ(f.instr_index, 1u);
    EXPECT_NE(f.message.find("OR"), std::string::npos);
  }
}

TEST(Lint, RegisterMaskIsNotFlagged) {
  // No immediate operand: nothing to judge statically.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  S2R R2, SR_CTAID.X ;\n"
                          "  LOP.AND R4, R1, R2 ;\n"
                          "  STG.E.U8 [RZ], R4 ;\n"
                          "  EXIT ;\n");
  EXPECT_EQ(CountKind(LintKernel(kernel), LintKind::kRedundantMask), 0u);
}

TEST(Lint, ShiftOutOfRange) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  SHL R2, R1, 0x20 ;\n"   // &31 -> shift by 0
                          "  SHL R4, R1, 0x1f ;\n"   // in range
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  STG.E.32 [RZ+4], R4 ;\n"
                          "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kShiftOutOfRange), 1u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kShiftOutOfRange) continue;
    EXPECT_EQ(f.instr_index, 1u);
    EXPECT_NE(f.message.find("truncates to 0"), std::string::npos) << f.message;
  }
}

TEST(Lint, FunnelShiftRangeIsSixBits) {
  // SHF masks its amount to 6 bits, so 0x20 is fine and 0x40 is not.
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  SHF.L R2, R1, 0x20, R1 ;\n"
                          "  SHF.L R4, R1, 0x40, R1 ;\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  STG.E.32 [RZ+4], R4 ;\n"
                          "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  ASSERT_EQ(CountKind(findings, LintKind::kShiftOutOfRange), 1u);
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kShiftOutOfRange) continue;
    EXPECT_EQ(f.instr_index, 2u);
  }
}

TEST(Lint, DynamicShiftAmountIsNotFlagged) {
  const sim::KernelSource kernel =
      AssembleKernelOrDie("t",
                          "  S2R R1, SR_TID.X ;\n"
                          "  SHL R2, R1, R1 ;\n"
                          "  STG.E.32 [RZ], R2 ;\n"
                          "  EXIT ;\n");
  EXPECT_EQ(CountKind(LintKernel(kernel), LintKind::kShiftOutOfRange), 0u);
}

TEST(Lint, ReportFormat) {
  const sim::KernelSource kernel = AssembleKernelOrDie("probe",
                                                       "  BRA end ;\n"
                                                       "  NOP ;\n"
                                                       "end:\n"
                                                       "  EXIT ;\n");
  const std::vector<LintFinding> findings = LintKernel(kernel);
  const std::string report = LintReport(kernel, findings);
  EXPECT_NE(report.find("probe:1: unreachable-block"), std::string::npos) << report;
  EXPECT_NE(report.find("[NOP"), std::string::npos) << report;
  EXPECT_TRUE(LintReport(kernel, {}).empty());
}

}  // namespace
}  // namespace nvbitfi::staticanalysis
