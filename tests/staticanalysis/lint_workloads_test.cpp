// The linter over every built-in workload kernel: the suite must be clean.
// A finding here means either a workload kernel regressed (dead code, an
// uninitialised read, an out-of-range shared access) or the analysis gained a
// false positive — both are bugs worth failing the build for.
#include <gtest/gtest.h>

#include <cctype>

#include "staticanalysis/lint.h"
#include "staticanalysis/static_site.h"
#include "workloads/workloads.h"

namespace nvbitfi::staticanalysis {
namespace {

class LintSuite : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(LintSuite, AllKernelsLintClean) {
  const workloads::WorkloadEntry& entry = GetParam();
  const std::vector<sim::KernelSource> kernels =
      HarvestKernels(*entry.program, sim::DeviceProps{});
  ASSERT_EQ(kernels.size(),
            static_cast<std::size_t>(entry.table4_counts.static_kernels));
  for (const sim::KernelSource& kernel : kernels) {
    const std::vector<LintFinding> findings = LintKernel(kernel);
    EXPECT_TRUE(findings.empty()) << LintReport(kernel, findings);
  }
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, LintSuite,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::staticanalysis
