#include "nvbit/nvbit.h"

#include <gtest/gtest.h>

#include <vector>

namespace nvbitfi::nvbit {
namespace {

constexpr const char* kModule =
    ".kernel alpha\n"
    "  S2R R1, SR_TID.X ;\n"
    "  IADD3 R2, R1, 1, RZ ;\n"
    "  EXIT ;\n"
    ".endkernel\n"
    ".kernel beta\n"
    "  NOP ;\n"
    "  EXIT ;\n"
    ".endkernel\n";

// A scriptable tool for testing the runtime.
class TestTool : public Tool {
 public:
  std::string ConfigKey() const override { return "test"; }
  void OnAttach(Runtime& runtime) override {
    DeviceFunction fn;
    fn.name = "count";
    fn.regs_used = 8;
    fn.cost_cycles = 10;
    fn.callback = [this](const sim::InstrEvent& event) {
      ++events;
      last_opcode = event.instr.opcode;
      if (writer) writer(event);
    };
    runtime.RegisterDeviceFunction(std::move(fn));
    attached = true;
  }
  void AtCudaEvent(Runtime& runtime, CudaEvent event, const EventInfo& info) override {
    switch (event) {
      case CudaEvent::kModuleLoaded:
        modules.push_back(info.module);
        if (on_module) on_module(runtime, *info.module);
        break;
      case CudaEvent::kKernelLaunchBegin:
        launch_begins.push_back(info.launch->kernel_name);
        if (on_launch_begin) on_launch_begin(runtime, info);
        break;
      case CudaEvent::kKernelLaunchEnd:
        launch_ends.push_back(info.launch->kernel_name);
        last_stats = *info.stats;
        break;
    }
  }

  bool attached = false;
  int events = 0;
  sim::Opcode last_opcode = sim::Opcode::kNOP;
  std::function<void(const sim::InstrEvent&)> writer;
  std::function<void(Runtime&, const sim::Module&)> on_module;
  std::function<void(Runtime&, const EventInfo&)> on_launch_begin;
  std::vector<const sim::Module*> modules;
  std::vector<std::string> launch_begins;
  std::vector<std::string> launch_ends;
  sim::LaunchStats last_stats;
};

struct Harness {
  sim::Context ctx;
  TestTool tool;
  Runtime runtime{ctx, tool};
  sim::Module* module = nullptr;

  void Load() {
    ASSERT_EQ(ctx.ModuleLoadText(kModule, &module), sim::CuResult::kSuccess);
  }
  void Launch(const char* name) {
    ASSERT_EQ(ctx.LaunchKernel(ctx.GetFunction(name), sim::Dim3{1, 1, 1},
                               sim::Dim3{32, 1, 1}, {}),
              sim::CuResult::kSuccess);
  }
};

TEST(Nvbit, AttachDeliversEvents) {
  Harness h;
  EXPECT_TRUE(h.tool.attached);
  h.Load();
  ASSERT_EQ(h.tool.modules.size(), 1u);
  h.Launch("alpha");
  h.Launch("beta");
  EXPECT_EQ(h.tool.launch_begins, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(h.tool.launch_ends, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Nvbit, DoubleAttachIsRejected) {
  sim::Context ctx;
  TestTool a, b;
  Runtime first(ctx, a);
  EXPECT_THROW(Runtime(ctx, b), std::logic_error);
}

TEST(Nvbit, DetachOnDestruction) {
  sim::Context ctx;
  {
    TestTool tool;
    Runtime runtime(ctx, tool);
    EXPECT_NE(ctx.interceptor(), nullptr);
  }
  EXPECT_EQ(ctx.interceptor(), nullptr);
}

TEST(Nvbit, GetInstrsExposesTheBody) {
  Harness h;
  h.Load();
  const sim::Function* alpha = h.module->GetFunction("alpha");
  const std::vector<Instr> instrs = h.runtime.GetInstrs(*alpha);
  ASSERT_EQ(instrs.size(), 3u);
  EXPECT_EQ(instrs[0].opcode(), sim::Opcode::kS2R);
  EXPECT_EQ(instrs[1].opcode(), sim::Opcode::kIADD3);
  EXPECT_EQ(instrs[2].opcode(), sim::Opcode::kEXIT);
  EXPECT_TRUE(instrs[1].has_dest());
  EXPECT_FALSE(instrs[2].has_dest());
  EXPECT_EQ(instrs[1].index(), 1u);
}

TEST(Nvbit, UninstrumentedLaunchFiresNoCallbacks) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kBefore);
  // Not enabled: original kernel runs.
  h.Launch("alpha");
  EXPECT_EQ(h.tool.events, 0);
  EXPECT_EQ(h.runtime.stats().uninstrumented_launches, 1u);
  EXPECT_EQ(h.runtime.stats().instrumented_launches, 0u);
}

TEST(Nvbit, SelectiveEnablePerLaunch) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kBefore);

  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  EXPECT_EQ(h.tool.events, 32);  // one event per lane

  h.runtime.EnableInstrumented(*alpha, false);
  h.Launch("alpha");
  EXPECT_EQ(h.tool.events, 32);  // unchanged
}

TEST(Nvbit, CallbackSeesCorrectInstruction) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 0, "count", sim::InsertPoint::kAfter);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  EXPECT_EQ(h.tool.last_opcode, sim::Opcode::kS2R);
}

TEST(Nvbit, LaneViewReadsArchitecturalState) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  // After "IADD3 R2, R1, 1", R2 must equal tid+1 for each lane.
  int checked = 0;
  h.tool.writer = [&checked](const sim::InstrEvent& event) {
    EXPECT_EQ(event.lane.ReadGpr(2), static_cast<std::uint32_t>(event.lane.lane_id() + 1));
    ++checked;
  };
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kAfter);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  EXPECT_EQ(checked, 32);
}

TEST(Nvbit, LaneViewWritesPropagate) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  // Corrupt R2 after the IADD3; verify through a second callback site.
  h.tool.writer = [](const sim::InstrEvent& event) {
    if (event.static_index == 1) event.lane.WriteGpr(2, 0x999);
    if (event.static_index == 2) {
      EXPECT_EQ(event.lane.ReadGpr(2), 0x999u);
    }
  };
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kAfter);
  h.runtime.InsertCall(*alpha, 2, "count", sim::InsertPoint::kBefore);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  EXPECT_EQ(h.tool.events, 64);
}

TEST(Nvbit, JitCompileOnceThenCache) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 0, "count", sim::InsertPoint::kBefore);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  h.Launch("alpha");
  h.Launch("alpha");
  EXPECT_EQ(h.runtime.stats().jit_compilations, 1u);
  EXPECT_EQ(h.runtime.stats().jit_cache_hits, 2u);
}

TEST(Nvbit, ClearInstrumentationInvalidatesCache) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 0, "count", sim::InsertPoint::kBefore);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  EXPECT_EQ(h.runtime.stats().jit_compilations, 1u);

  h.runtime.ClearInstrumentation(*alpha);
  h.Launch("alpha");  // no calls -> uninstrumented
  EXPECT_EQ(h.tool.events, 32);

  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kBefore);
  h.Launch("alpha");  // re-JIT
  EXPECT_EQ(h.runtime.stats().jit_compilations, 2u);
}

TEST(Nvbit, InstrumentationCostsCycles) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.Launch("alpha");
  const std::uint64_t plain = h.ctx.total_cycles();
  h.runtime.InsertCall(*alpha, 0, "count", sim::InsertPoint::kBefore);
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kBefore);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  const std::uint64_t instrumented = h.ctx.total_cycles() - plain;
  EXPECT_GT(instrumented, plain);  // JIT + callback cycles dominate
}

TEST(Nvbit, InsertCallValidation) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  EXPECT_THROW(h.runtime.InsertCall(*alpha, 99, "count", sim::InsertPoint::kBefore),
               std::logic_error);
  EXPECT_THROW(h.runtime.InsertCall(*alpha, 0, "unregistered", sim::InsertPoint::kBefore),
               std::logic_error);
}

TEST(Nvbit, RegisterDeviceFunctionValidation) {
  sim::Context ctx;
  TestTool tool;
  Runtime runtime(ctx, tool);
  DeviceFunction unnamed;
  unnamed.callback = [](const sim::InstrEvent&) {};
  EXPECT_THROW(runtime.RegisterDeviceFunction(unnamed), std::logic_error);
  DeviceFunction no_callback;
  no_callback.name = "x";
  EXPECT_THROW(runtime.RegisterDeviceFunction(std::move(no_callback)), std::logic_error);
}

TEST(Nvbit, BeforeAndAfterOrdering) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  std::vector<std::pair<int, std::uint32_t>> trace;  // (phase, R2 value) on lane 0
  h.tool.writer = [&trace](const sim::InstrEvent& event) {
    if (event.lane.lane_id() != 0) return;
    trace.emplace_back(0, event.lane.ReadGpr(2));
  };
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kBefore);
  h.runtime.InsertCall(*alpha, 1, "count", sim::InsertPoint::kAfter);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("alpha");
  // Before the IADD3, R2 is 0; after, it is tid+1 = 1 on lane 0.
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].second, 0u);
  EXPECT_EQ(trace[1].second, 1u);
}

TEST(Nvbit, InstrumentationOnOneKernelDoesNotAffectOthers) {
  Harness h;
  h.Load();
  sim::Function* alpha = h.ctx.GetFunction("alpha");
  h.runtime.InsertCall(*alpha, 0, "count", sim::InsertPoint::kBefore);
  h.runtime.EnableInstrumented(*alpha, true);
  h.Launch("beta");
  EXPECT_EQ(h.tool.events, 0);
}

}  // namespace
}  // namespace nvbitfi::nvbit
