#include "nvbit/tools.h"

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "../core/test_program.h"

namespace nvbitfi::nvbit {
namespace {

using fi::testing::MiniProgram;

fi::RunArtifacts RunWith(Tool* tool) {
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  return runner.Execute(tool, sim::DeviceProps{}, /*watchdog=*/0);
}

TEST(InstrCount, CountsEveryLaunch) {
  InstrCountTool tool;
  RunWith(&tool);
  ASSERT_EQ(tool.launches().size(), 4u);  // 3x work + 1x tail
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tool.launches()[static_cast<std::size_t>(i)].kernel_name, "work");
    EXPECT_EQ(tool.launches()[static_cast<std::size_t>(i)].thread_instructions,
              fi::testing::kWorkThreadInstructions);
    // Lanes 0..15 skip the guarded IADD3 -> 16 predicated-off events.
    EXPECT_EQ(tool.launches()[static_cast<std::size_t>(i)].predicated_off, 16u);
  }
  EXPECT_EQ(tool.launches()[3].kernel_name, "tail");
}

TEST(InstrCount, TotalsMatchTheDriver) {
  InstrCountTool tool;
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  const fi::RunArtifacts run = runner.Execute(&tool, sim::DeviceProps{}, 0);
  EXPECT_EQ(tool.TotalThreadInstructions(), run.thread_instructions);
}

TEST(OpcodeHistogram, MatchesHandCounts) {
  OpcodeHistogramTool tool;
  RunWith(&tool);
  const auto& hist = tool.histogram();
  // 3 work launches x 32 FADDs.
  EXPECT_EQ(hist[static_cast<std::size_t>(sim::Opcode::kFADD)], 3u * 32u);
  // work: 48 IADD3 per launch (32 + 16 guarded).
  EXPECT_EQ(hist[static_cast<std::size_t>(sim::Opcode::kIADD3)], 3u * 48u);
  // Never-executed opcode stays zero.
  EXPECT_EQ(hist[static_cast<std::size_t>(sim::Opcode::kDADD)], 0u);
}

TEST(OpcodeHistogram, TopIsSortedDescending) {
  OpcodeHistogramTool tool;
  RunWith(&tool);
  const auto top = tool.Top(5);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].first, top[i].first);
  }
  const std::string rendered = tool.Render();
  EXPECT_NE(rendered.find("FADD"), std::string::npos);
}

TEST(MemTrace, RecordsGlobalAccessesWithAddresses) {
  MemTraceTool tool("work");
  RunWith(&tool);
  // work: 2 STGs per thread per launch = 3 * 32 * 2 accesses.
  ASSERT_EQ(tool.accesses().size(), 3u * 32u * 2u);
  for (const MemTraceTool::Access& access : tool.accesses()) {
    EXPECT_EQ(access.kernel_name, "work");
    EXPECT_TRUE(access.is_store);
    EXPECT_EQ(access.bytes, 4);
    EXPECT_GE(access.address, sim::GlobalMemory::kHeapBase);
  }
  // The kernel stores at [out + 8*tid] and [out + 8*tid + 4]: events arrive
  // lane-by-lane for the first STG (stride 8), then for the second (+4).
  const auto& a0 = tool.accesses()[0];
  const auto& a1 = tool.accesses()[1];
  EXPECT_EQ(a0.lane_id, 0);
  EXPECT_EQ(a1.lane_id, 1);
  EXPECT_EQ(a1.address, a0.address + 8);
  EXPECT_EQ(tool.accesses()[32].address, a0.address + 4);  // second STG, lane 0
}

TEST(MemTrace, FilterRestrictsKernels) {
  MemTraceTool tool("tail");
  RunWith(&tool);
  ASSERT_EQ(tool.accesses().size(), 1u);  // tail's single STG on thread 0
  EXPECT_EQ(tool.accesses()[0].kernel_name, "tail");
  EXPECT_EQ(tool.accesses()[0].lane_id, 0);
}

TEST(MemTrace, UnfilteredTracesEverything) {
  MemTraceTool tool;
  RunWith(&tool);
  EXPECT_EQ(tool.accesses().size(), 3u * 32u * 2u + 1u);
}

}  // namespace
}  // namespace nvbitfi::nvbit
