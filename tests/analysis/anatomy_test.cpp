#include "analysis/anatomy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "../core/test_program.h"
#include "core/campaign.h"
#include "sassim/isa/opcode.h"

namespace nvbitfi::analysis {
namespace {

fi::RunArtifacts ArtifactsFor(const std::vector<float>& values) {
  fi::RunArtifacts art;
  art.output_file.resize(values.size() * sizeof(float));
  std::memcpy(art.output_file.data(), values.data(), art.output_file.size());
  art.stdout_text = "ok\n";
  return art;
}

fi::RunArtifacts ArtifactsFor64(const std::vector<double>& values) {
  fi::RunArtifacts art;
  art.output_file.resize(values.size() * sizeof(double));
  std::memcpy(art.output_file.data(), values.data(), art.output_file.size());
  art.stdout_text = "ok\n";
  return art;
}

float FlipBit(float value, int bit) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= (1u << bit);
  std::memcpy(&value, &bits, sizeof(bits));
  return value;
}

TEST(Anatomy, CleanBuffersHaveNoOutputDiff) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f};
  const fi::RunArtifacts golden = ArtifactsFor(values);
  fi::RunArtifacts run = ArtifactsFor(values);
  run.stdout_text = "different\n";
  const SdcAnatomy anatomy = AnalyzeSdc(golden, run);
  EXPECT_EQ(anatomy.pattern, SdcPattern::kNoOutputDiff);
  EXPECT_EQ(anatomy.extent, SpatialExtent::kNone);
  EXPECT_EQ(anatomy.corrupted_elements, 0u);
  EXPECT_EQ(anatomy.elements_compared, 3u);
  EXPECT_TRUE(anatomy.stdout_diff);
  EXPECT_FALSE(anatomy.size_mismatch);
}

TEST(Anatomy, SingleBitFlipIsClassified) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f};
  const fi::RunArtifacts golden = ArtifactsFor(values);
  std::vector<float> faulty = values;
  faulty[2] = FlipBit(faulty[2], 23);  // lowest exponent bit: 3.0 -> 1.5
  const SdcAnatomy anatomy = AnalyzeSdc(golden, ArtifactsFor(faulty));
  EXPECT_EQ(anatomy.pattern, SdcPattern::kSingleBit);
  EXPECT_EQ(anatomy.extent, SpatialExtent::kSingleElement);
  EXPECT_EQ(anatomy.corrupted_elements, 1u);
  EXPECT_EQ(anatomy.first_corrupted, 2u);
  EXPECT_EQ(anatomy.last_corrupted, 2u);
  EXPECT_EQ(anatomy.bit_histogram[23], 1u);
  for (int bit = 0; bit < 64; ++bit) {
    if (bit != 23) {
      EXPECT_EQ(anatomy.bit_histogram[bit], 0u) << bit;
    }
  }
  ASSERT_EQ(anatomy.sample.size(), 1u);
  EXPECT_EQ(anatomy.sample[0].index, 2u);
  EXPECT_EQ(anatomy.sample[0].golden_bits ^ anatomy.sample[0].faulty_bits,
            1ull << 23);
}

TEST(Anatomy, MultiBitWithinOneByteIsByteGranular) {
  const std::vector<float> values{1.0f};
  std::vector<float> faulty = values;
  faulty[0] = FlipBit(FlipBit(faulty[0], 1), 5);  // both in byte 0
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty));
  EXPECT_EQ(anatomy.pattern, SdcPattern::kMultiBitByte);
  EXPECT_EQ(anatomy.extent, SpatialExtent::kSingleElement);
}

TEST(Anatomy, MultiBitAcrossBytesIsWordGranular) {
  const std::vector<float> values{1.0f};
  std::vector<float> faulty = values;
  faulty[0] = FlipBit(FlipBit(faulty[0], 1), 17);  // bytes 0 and 2
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty));
  EXPECT_EQ(anatomy.pattern, SdcPattern::kMultiBitWord);
}

TEST(Anatomy, MultipleCorruptedElementsAreMultiWord) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  std::vector<float> faulty = values;
  faulty[0] = FlipBit(faulty[0], 3);
  faulty[5] = FlipBit(faulty[5], 3);
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty));
  EXPECT_EQ(anatomy.pattern, SdcPattern::kMultiWord);
  EXPECT_EQ(anatomy.corrupted_elements, 2u);
  EXPECT_EQ(anatomy.first_corrupted, 0u);
  EXPECT_EQ(anatomy.last_corrupted, 5u);
  // 2 corrupted over a span of 6: scattered.
  EXPECT_EQ(anatomy.extent, SpatialExtent::kScattered);
}

TEST(Anatomy, ContiguousCorruptionIsClustered) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> faulty = values;
  faulty[1] = FlipBit(faulty[1], 0);
  faulty[2] = FlipBit(faulty[2], 0);
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty));
  EXPECT_EQ(anatomy.extent, SpatialExtent::kClustered);
}

TEST(Anatomy, SizeMismatchIsRecorded) {
  const fi::RunArtifacts golden = ArtifactsFor({1.0f, 2.0f, 3.0f});
  const fi::RunArtifacts run = ArtifactsFor({1.0f, 2.0f});
  const SdcAnatomy anatomy = AnalyzeSdc(golden, run);
  EXPECT_TRUE(anatomy.size_mismatch);
  EXPECT_EQ(anatomy.elements_compared, 2u);
}

TEST(Anatomy, MagnitudeBuckets) {
  EXPECT_EQ(MagnitudeBucket(1.0, 1.0 + 1e-8), 0);   // rel < 1e-6
  EXPECT_EQ(MagnitudeBucket(1.0, 1.0 + 1e-4), 1);   // rel < 1e-3
  EXPECT_EQ(MagnitudeBucket(1.0, 1.5), 2);          // rel < 1
  EXPECT_EQ(MagnitudeBucket(1.0, 100.0), 3);        // rel < 1e3
  EXPECT_EQ(MagnitudeBucket(1.0, 1e9), 4);          // rel >= 1e3
  EXPECT_EQ(MagnitudeBucket(1.0, std::numeric_limits<double>::infinity()), 5);
  EXPECT_EQ(MagnitudeBucket(1.0, std::numeric_limits<double>::quiet_NaN()), 5);
  // Tiny golden values use the 1e-30 floor instead of dividing by ~zero.
  EXPECT_EQ(MagnitudeBucket(0.0, 0.0), 0);
}

TEST(Anatomy, Float64Interpretation) {
  const std::vector<double> values{1.0, 2.0};
  std::vector<double> faulty = values;
  std::uint64_t bits;
  std::memcpy(&bits, &faulty[1], sizeof(bits));
  bits ^= (1ull << 52);  // lowest exponent bit
  std::memcpy(&faulty[1], &bits, sizeof(bits));
  AnatomyConfig config;
  config.element = ElementKind::kF64;
  const SdcAnatomy anatomy =
      AnalyzeSdc(ArtifactsFor64(values), ArtifactsFor64(faulty), config);
  EXPECT_EQ(anatomy.element, ElementKind::kF64);
  EXPECT_EQ(anatomy.elements_compared, 2u);
  EXPECT_EQ(anatomy.pattern, SdcPattern::kSingleBit);
  EXPECT_EQ(anatomy.bit_histogram[52], 1u);
}

TEST(Anatomy, SamplingIsBoundedButCountsAreNot) {
  std::vector<float> values(256, 1.0f);
  std::vector<float> faulty = values;
  for (std::size_t i = 0; i < faulty.size(); ++i) faulty[i] = FlipBit(faulty[i], 2);
  AnatomyConfig config;
  config.max_sampled_elements = 8;
  const SdcAnatomy anatomy =
      AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty), config);
  EXPECT_EQ(anatomy.corrupted_elements, 256u);  // full-buffer count
  EXPECT_EQ(anatomy.sample.size(), 8u);         // bounded capture
  EXPECT_EQ(anatomy.bit_histogram[2], 8u);
  EXPECT_EQ(anatomy.extent, SpatialExtent::kClustered);
  EXPECT_EQ(anatomy.last_corrupted, 255u);
}

TEST(Anatomy, JsonRoundTripIsLossless) {
  std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> faulty = values;
  faulty[1] = FlipBit(faulty[1], 30);
  faulty[3] = FlipBit(FlipBit(faulty[3], 0), 9);
  fi::RunArtifacts run = ArtifactsFor(faulty);
  run.stdout_text = "corrupted\n";
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), run);
  const json::Value encoded = ToJson(anatomy);
  const std::optional<json::Value> reparsed = json::Value::Parse(encoded.Dump());
  ASSERT_TRUE(reparsed.has_value());
  const std::optional<SdcAnatomy> decoded = SdcAnatomyFromJson(*reparsed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, anatomy);
}

TEST(Anatomy, ElementKindNamesRoundTrip) {
  EXPECT_EQ(ElementKindFromName(ElementKindName(ElementKind::kF32)),
            ElementKind::kF32);
  EXPECT_EQ(ElementKindFromName(ElementKindName(ElementKind::kF64)),
            ElementKind::kF64);
  EXPECT_FALSE(ElementKindFromName("f16").has_value());
}

TEST(Anatomy, PartitionGroupCoversEveryOpcodeExactlyOnce) {
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    const auto opcode = static_cast<sim::Opcode>(op);
    const fi::ArchStateId group = PartitionGroupOf(opcode);
    EXPECT_GE(static_cast<int>(group), 1);
    EXPECT_LE(static_cast<int>(group), 6);
    EXPECT_TRUE(fi::OpcodeInGroup(opcode, group));
    // Groups 1..6 partition the ISA (Table II): no earlier group matches.
    for (int g = 1; g < static_cast<int>(group); ++g) {
      EXPECT_FALSE(fi::OpcodeInGroup(opcode, static_cast<fi::ArchStateId>(g)))
          << sim::OpcodeName(opcode);
    }
  }
}

TEST(Anatomy, BreakdownAggregatesByKernelAndGroup) {
  const std::vector<float> values{1.0f, 2.0f};
  std::vector<float> faulty = values;
  faulty[0] = FlipBit(faulty[0], 4);
  const SdcAnatomy anatomy = AnalyzeSdc(ArtifactsFor(values), ArtifactsFor(faulty));

  AnatomyBreakdown breakdown;
  breakdown.total_runs = 3;
  breakdown.Add("kern_a", sim::Opcode::kFADD, anatomy);
  breakdown.Add("kern_a", sim::Opcode::kIADD3, anatomy);
  breakdown.Add("kern_b", std::nullopt, anatomy);

  EXPECT_EQ(breakdown.campaign.sdc_runs, 3u);
  EXPECT_EQ(breakdown.campaign.bit_histogram[4], 3u);
  EXPECT_EQ(breakdown.by_kernel.at("kern_a").sdc_runs, 2u);
  EXPECT_EQ(breakdown.by_kernel.at("kern_b").sdc_runs, 1u);
  // FADD is G_FP32; IADD3 falls through to G_OTHERS; no-opcode runs are not
  // attributed to any group.
  EXPECT_EQ(breakdown.by_opcode_group.size(), 2u);
  EXPECT_EQ(breakdown.by_opcode_group.at("G_FP32").sdc_runs, 1u);
  EXPECT_EQ(breakdown.by_opcode_group.at("G_OTHERS").sdc_runs, 1u);

  const std::string text = AnatomyReportText(breakdown);
  EXPECT_NE(text.find("SDC anatomy: 3 SDCs over 3 runs"), std::string::npos);
  EXPECT_NE(text.find("single-bit"), std::string::npos);
  EXPECT_NE(text.find("kern_a"), std::string::npos);
  EXPECT_NE(text.find("G_FP32"), std::string::npos);

  const json::Value report = AnatomyReportJson(breakdown);
  EXPECT_EQ(report.GetUint("total_runs", 0), 3u);
  const json::Value* campaign = report.Find("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->GetUint("sdc_runs", 0), 3u);
}

TEST(Anatomy, BuildTransientAnatomyCoversEverySdc) {
  const fi::testing::MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = 11;
  config.num_injections = 40;
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

  const AnatomyBreakdown breakdown = BuildTransientAnatomy(result);
  EXPECT_EQ(breakdown.total_runs, 40u);
  EXPECT_EQ(breakdown.campaign.sdc_runs, result.counts.sdc);
  std::uint64_t by_kernel = 0;
  for (const auto& [kernel, aggregate] : breakdown.by_kernel) {
    EXPECT_TRUE(kernel == "work" || kernel == "tail") << kernel;
    by_kernel += aggregate.sdc_runs;
  }
  EXPECT_EQ(by_kernel, result.counts.sdc);
}

}  // namespace
}  // namespace nvbitfi::analysis
