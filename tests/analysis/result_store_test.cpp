#include "analysis/result_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../core/test_program.h"
#include "core/campaign.h"
#include "core/report.h"

namespace nvbitfi::analysis {
namespace {

using fi::testing::MiniProgram;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// Runs a transient campaign on MiniProgram, streaming every run (plus SDC
// anatomy) into a store at `path`, mirroring the CLI's wiring.
fi::TransientCampaignResult RunStoredCampaign(const std::string& path, bool resume,
                                              int num_injections = 20,
                                              std::uint64_t seed = 9) {
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = seed;
  config.num_injections = num_injections;

  const fi::RunArtifacts golden = runner.Golden(config.device);
  fi::RunArtifacts profiling;
  const fi::ProgramProfile profile =
      runner.Profile(config.profiling, config.device, &profiling);
  const StoreMeta meta =
      TransientStoreMeta(program.name(), config, golden, profiling.cycles, profile);

  std::string error;
  auto store = ResultStore::Open(path, meta, resume, &error);
  EXPECT_NE(store, nullptr) << error;
  config.preloaded = &store->loaded().transient;
  config.on_run_complete = [&](std::size_t index, const fi::InjectionRun& run) {
    if (!run.trivially_masked &&
        run.classification.outcome == fi::Outcome::kSdc) {
      const SdcAnatomy anatomy = AnalyzeSdc(golden, run.artifacts);
      store->AppendTransient(index, run, &anatomy);
    } else {
      store->AppendTransient(index, run, nullptr);
    }
  };
  return runner.RunTransientCampaign(config);
}

TEST(ResultStore, RoundTripsACompleteCampaign) {
  const std::string path = TempPath("store_roundtrip.jsonl");
  std::remove(path.c_str());
  const fi::TransientCampaignResult result = RunStoredCampaign(path, false);

  std::string error;
  const std::optional<LoadedStore> loaded = LoadResultStore(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->meta.kind, "transient");
  EXPECT_EQ(loaded->meta.program, "mini");
  EXPECT_EQ(loaded->completed(), result.injections.size());

  const fi::TransientCampaignResult rebuilt = RebuildTransientResult(*loaded);
  EXPECT_EQ(rebuilt.counts.sdc, result.counts.sdc);
  EXPECT_EQ(rebuilt.counts.due, result.counts.due);
  EXPECT_EQ(rebuilt.counts.masked, result.counts.masked);
  EXPECT_EQ(rebuilt.trivially_masked, result.trivially_masked);
  EXPECT_EQ(rebuilt.never_activated, result.never_activated);
  EXPECT_EQ(rebuilt.golden.cycles, result.golden.cycles);
  EXPECT_EQ(rebuilt.profiling_run.cycles, result.profiling_run.cycles);
  // The per-injection CSV — every selected site, record, classification, and
  // cycle count — survives the round trip bit-identically.
  EXPECT_EQ(fi::TransientCampaignCsv(rebuilt), fi::TransientCampaignCsv(result));

  // Anatomy from the store covers exactly the SDC runs.
  const AnatomyBreakdown breakdown = RebuildAnatomy(*loaded);
  EXPECT_EQ(breakdown.campaign.sdc_runs, result.counts.sdc);
  EXPECT_EQ(breakdown.total_runs, result.injections.size());
}

// The ISSUE acceptance test: a campaign whose store is truncated partway
// (simulating a kill) and then resumed produces a final report bit-identical
// to an uninterrupted campaign.
TEST(ResultStore, ResumeAfterTruncationIsBitIdentical) {
  const std::string full_path = TempPath("store_full.jsonl");
  const std::string cut_path = TempPath("store_cut.jsonl");
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());

  const fi::TransientCampaignResult uninterrupted =
      RunStoredCampaign(full_path, false);
  const std::string full_csv = fi::TransientCampaignCsv(uninterrupted);

  // Simulate the kill: keep the header plus roughly half the records, with
  // the last line cut mid-record.
  const std::string full = ReadFile(full_path);
  std::size_t cut = full.size() / 2;
  WriteFile(cut_path, full.substr(0, cut));

  std::string error;
  const std::optional<LoadedStore> partial = LoadResultStore(cut_path, &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_GT(partial->completed(), 0u);
  EXPECT_LT(partial->completed(), uninterrupted.injections.size());

  const fi::TransientCampaignResult resumed = RunStoredCampaign(cut_path, true);
  EXPECT_EQ(fi::TransientCampaignCsv(resumed), full_csv);

  // The resumed store file now holds the complete campaign: analyze-style
  // rebuilding matches too, including the anatomy records persisted by both
  // the interrupted and the resuming campaign.
  const std::optional<LoadedStore> completed = LoadResultStore(cut_path, &error);
  ASSERT_TRUE(completed.has_value()) << error;
  EXPECT_EQ(completed->completed(), uninterrupted.injections.size());
  EXPECT_EQ(fi::TransientCampaignCsv(RebuildTransientResult(*completed)), full_csv);

  const std::optional<LoadedStore> reference = LoadResultStore(full_path, &error);
  ASSERT_TRUE(reference.has_value()) << error;
  const std::string reference_anatomy =
      AnatomyReportText(RebuildAnatomy(*reference));
  EXPECT_EQ(AnatomyReportText(RebuildAnatomy(*completed)), reference_anatomy);
}

TEST(ResultStore, TruncatedFinalLineIsSkippedButMidFileCorruptionIsNot) {
  const std::string path = TempPath("store_corrupt.jsonl");
  std::remove(path.c_str());
  RunStoredCampaign(path, false, 6);

  const std::string full = ReadFile(path);
  // Drop the trailing newline and a few bytes: a truncated final record.
  WriteFile(path, full.substr(0, full.size() - 5));
  std::string error;
  std::optional<LoadedStore> loaded = LoadResultStore(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->completed(), 5u);

  // Corrupt a record in the middle: that is not a kill footprint.
  std::string corrupted = full;
  const std::size_t second_line = corrupted.find('\n', corrupted.find('\n') + 1);
  ASSERT_NE(second_line, std::string::npos);
  corrupted[second_line + 1] = '#';
  WriteFile(path, corrupted);
  loaded = LoadResultStore(path, &error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ResultStore, ResumeRejectsIncompatibleCampaigns) {
  const std::string path = TempPath("store_incompat.jsonl");
  std::remove(path.c_str());
  RunStoredCampaign(path, false, 6, /*seed=*/9);

  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = 10;  // different seed: different experiment sequence
  config.num_injections = 6;
  const fi::RunArtifacts golden = runner.Golden(config.device);
  fi::RunArtifacts profiling;
  const fi::ProgramProfile profile =
      runner.Profile(config.profiling, config.device, &profiling);
  const StoreMeta meta =
      TransientStoreMeta(program.name(), config, golden, profiling.cycles, profile);

  std::string error;
  const auto store = ResultStore::Open(path, meta, /*resume=*/true, &error);
  EXPECT_EQ(store, nullptr);
  EXPECT_NE(error.find("different campaign"), std::string::npos) << error;
}

TEST(ResultStore, ResumeRejectsMixedCheckpointConfiguration) {
  const std::string path = TempPath("store_mixed_checkpoints.jsonl");
  std::remove(path.c_str());

  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = 9;
  config.num_injections = 6;
  config.checkpoints = false;
  const fi::RunArtifacts golden = runner.Golden(config.device);
  fi::RunArtifacts profiling;
  const fi::ProgramProfile profile =
      runner.Profile(config.profiling, config.device, &profiling);
  {
    const StoreMeta meta =
        TransientStoreMeta(program.name(), config, golden, profiling.cycles, profile);
    std::string error;
    const auto store = ResultStore::Open(path, meta, /*resume=*/false, &error);
    ASSERT_NE(store, nullptr) << error;
  }

  // Although a checkpointed campaign would produce bit-identical records,
  // completing a --no-checkpoints store under --checkpoints (or vice versa)
  // would leave a shard whose header misdescribes half its provenance —
  // exactly what the identity acceptance test diffs on.  Rejected.
  config.checkpoints = true;
  const StoreMeta meta =
      TransientStoreMeta(program.name(), config, golden, profiling.cycles, profile);
  std::string error;
  const auto store = ResultStore::Open(path, meta, /*resume=*/true, &error);
  EXPECT_EQ(store, nullptr);
  EXPECT_NE(error.find("different campaign"), std::string::npos) << error;
}

TEST(ResultStore, RejectsBadHeaders) {
  const std::string path = TempPath("store_badheader.jsonl");
  std::string error;

  WriteFile(path, "not json at all\n");
  EXPECT_FALSE(LoadResultStore(path, &error).has_value());

  WriteFile(path, "{\"nvbitfi_result_store\":99,\"kind\":\"transient\"}\n");
  EXPECT_FALSE(LoadResultStore(path, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  EXPECT_FALSE(LoadResultStore(TempPath("does_not_exist.jsonl"), &error).has_value());
}

TEST(ResultStore, AdaptiveHeaderRoundTripsPolicyAndSchedule) {
  const std::string path = TempPath("store_adaptive_header.jsonl");
  std::remove(path.c_str());

  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = 9;
  config.num_injections = 8;
  const fi::RunArtifacts golden = runner.Golden(config.device);
  fi::RunArtifacts profiling;
  const fi::ProgramProfile profile =
      runner.Profile(config.profiling, config.device, &profiling);

  StoreMeta meta =
      TransientStoreMeta(program.name(), config, golden, profiling.cycles, profile);
  meta.adaptive = true;
  meta.policy.confidence = 0.99;
  meta.policy.target_half_width = 0.05;
  meta.policy.round_size = 16;
  meta.policy.min_per_stratum = 2;
  meta.strata = {"k/fp32/live", "k/ld/dead"};
  adaptive::RoundRecord round;
  round.allocations.push_back({0, 2});
  round.allocations.push_back({1, 1});
  round.indexes = {0, 1, 5};
  meta.rounds.push_back(round);

  {
    std::string error;
    const auto store = ResultStore::Open(path, meta, /*resume=*/false, &error);
    ASSERT_NE(store, nullptr) << error;
  }

  std::string error;
  const std::optional<LoadedStore> loaded = LoadResultStore(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->meta.adaptive);
  EXPECT_DOUBLE_EQ(loaded->meta.policy.confidence, 0.99);
  EXPECT_DOUBLE_EQ(loaded->meta.policy.target_half_width, 0.05);
  EXPECT_EQ(loaded->meta.policy.round_size, 16u);
  EXPECT_EQ(loaded->meta.policy.min_per_stratum, 2u);
  EXPECT_EQ(loaded->meta.strata, meta.strata);
  ASSERT_EQ(loaded->meta.rounds.size(), 1u);
  ASSERT_EQ(loaded->meta.rounds[0].allocations.size(), 2u);
  EXPECT_EQ(loaded->meta.rounds[0].allocations[0].stratum, 0u);
  EXPECT_EQ(loaded->meta.rounds[0].allocations[0].count, 2u);
  EXPECT_EQ(loaded->meta.rounds[0].allocations[1].stratum, 1u);
  EXPECT_EQ(loaded->meta.rounds[0].allocations[1].count, 1u);
  EXPECT_EQ(loaded->meta.rounds[0].indexes, round.indexes);

  // The policy joins the resume identity; the schedule does not (it is
  // progress state, rewritten at every round boundary).
  EXPECT_TRUE(meta.CompatibleWith(loaded->meta));
  StoreMeta more_rounds = meta;
  more_rounds.rounds.push_back(round);
  EXPECT_TRUE(more_rounds.CompatibleWith(loaded->meta));
  StoreMeta tightened = meta;
  tightened.policy.target_half_width = 0.01;
  EXPECT_FALSE(tightened.CompatibleWith(loaded->meta));
  StoreMeta uniform = meta;
  uniform.adaptive = false;
  EXPECT_FALSE(uniform.CompatibleWith(loaded->meta));
}

TEST(ResultStore, PermanentCampaignRoundTrips) {
  const MiniProgram program;
  const fi::CampaignRunner runner(program);
  fi::PermanentCampaignConfig config;
  config.seed = 4;

  const fi::RunArtifacts golden = runner.Golden(config.device);
  fi::RunArtifacts profiling;
  const fi::ProgramProfile profile =
      runner.Profile(fi::ProfilerTool::Mode::kExact, config.device, &profiling);
  const std::size_t num_experiments = profile.ExecutedOpcodes().size();
  const StoreMeta meta =
      PermanentStoreMeta(program.name(), config, num_experiments, golden, profile);

  const std::string path = TempPath("store_permanent.jsonl");
  std::remove(path.c_str());
  std::string error;
  auto store = ResultStore::Open(path, meta, false, &error);
  ASSERT_NE(store, nullptr) << error;
  config.preloaded = &store->loaded().permanent;
  config.on_run_complete = [&](std::size_t index, const fi::PermanentRun& run) {
    if (run.classification.outcome == fi::Outcome::kSdc) {
      const SdcAnatomy anatomy = AnalyzeSdc(golden, run.artifacts);
      store->AppendPermanent(index, run, &anatomy);
    } else {
      store->AppendPermanent(index, run, nullptr);
    }
  };
  const fi::PermanentCampaignResult result =
      runner.RunPermanentCampaign(config, profile);
  store.reset();

  const std::optional<LoadedStore> loaded = LoadResultStore(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->meta.kind, "permanent");
  EXPECT_EQ(loaded->completed(), result.runs.size());

  const fi::PermanentCampaignResult rebuilt = RebuildPermanentResult(*loaded);
  EXPECT_EQ(fi::PermanentCampaignCsv(rebuilt), fi::PermanentCampaignCsv(result));
  EXPECT_EQ(rebuilt.executed_opcodes, result.executed_opcodes);
  EXPECT_EQ(rebuilt.weighted.sdc, result.weighted.sdc);

  const AnatomyBreakdown breakdown = RebuildAnatomy(*loaded);
  EXPECT_EQ(breakdown.campaign.sdc_runs, result.counts.sdc);
}

}  // namespace
}  // namespace nvbitfi::analysis
