#include "analysis/json.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace nvbitfi::analysis::json {
namespace {

TEST(Json, ScalarsRoundTrip) {
  Value obj;
  obj.Set("b", Value(true));
  obj.Set("u", Value(std::uint64_t{18446744073709551615ull}));
  obj.Set("i", Value(std::int64_t{-42}));
  obj.Set("d", Value(0.1));
  obj.Set("s", Value(std::string("hi \"there\"\n\t\\")));
  obj.Set("n", Value());

  const std::optional<Value> parsed = Value::Parse(obj.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetBool("b", false), true);
  EXPECT_EQ(parsed->GetUint("u", 0), 18446744073709551615ull);
  EXPECT_EQ(parsed->GetInt("i", 0), -42);
  EXPECT_EQ(parsed->GetDouble("d", 0.0), 0.1);
  EXPECT_EQ(parsed->GetString("s", ""), "hi \"there\"\n\t\\");
  const Value* null_member = parsed->Find("n");
  ASSERT_NE(null_member, nullptr);
  EXPECT_EQ(null_member->kind(), Value::Kind::kNull);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Value obj;
  obj.Set("zebra", Value(std::int64_t{1}));
  obj.Set("alpha", Value(std::int64_t{2}));
  const std::string text = obj.Dump();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(Json, ArraysRoundTrip) {
  Value arr;
  for (int i = 0; i < 3; ++i) arr.Push(Value(std::int64_t{i * 7}));
  Value obj;
  obj.Set("a", std::move(arr));
  const std::optional<Value> parsed = Value::Parse(obj.Dump());
  ASSERT_TRUE(parsed.has_value());
  const Value* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(2).AsInt(), 14);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::Parse("").has_value());
  EXPECT_FALSE(Value::Parse("{").has_value());
  EXPECT_FALSE(Value::Parse("{} trailing").has_value());
  EXPECT_FALSE(Value::Parse("{\"a\":}").has_value());
  EXPECT_FALSE(Value::Parse("[1,]").has_value());
  EXPECT_FALSE(Value::Parse("\"unterminated").has_value());
}

TEST(Json, ParseAcceptsNestedStructures) {
  const std::optional<Value> parsed =
      Value::Parse("{\"a\":[{\"b\":1.5e3},null,true],\"c\":\"\\u001f\"}");
  ASSERT_TRUE(parsed.has_value());
  const Value* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->at(0).GetDouble("b", 0.0), 1500.0);
  EXPECT_EQ(parsed->GetString("c", ""), "\x1f");
}

TEST(Json, DoublesSurviveExactly) {
  Value obj;
  obj.Set("d", Value(1.0 / 3.0));
  const std::optional<Value> parsed = Value::Parse(obj.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetDouble("d", 0.0), 1.0 / 3.0);
}

}  // namespace
}  // namespace nvbitfi::analysis::json
