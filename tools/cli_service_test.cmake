# Campaign service through the CLI: shard + merge reproduce an unsharded
# store byte for byte, a killed shard resumes cleanly, merge rejects
# incomplete inputs, and `analyze` prints the replay accounting the store
# header carries.
set(DIR ${WORKDIR}/cli_service)
file(REMOVE_RECURSE ${DIR})
file(MAKE_DIRECTORY ${DIR})

# Canonical: one unsharded campaign with a store.
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 9 --seed 33
                        --approximate --store ${DIR}/canonical.jsonl
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "canonical campaign failed (${rc})")
endif()

# The same campaign as three standalone shards.
foreach(range "0:3" "3:6" "6:9")
  string(REPLACE ":" "_" tag ${range})
  execute_process(COMMAND ${CLI} shard 314.omriq --injections 9 --seed 33
                          --approximate --index-range ${range}
                          --store ${DIR}/shard_${tag}.jsonl
                  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shard ${range} failed (${rc})")
  endif()
  if(NOT out MATCHES "shard \\[")
    message(FATAL_ERROR "shard ${range} printed no summary:\n${out}")
  endif()
endforeach()

# Merging an incomplete shard set must fail loudly, not write a store.
execute_process(COMMAND ${CLI} merge ${DIR}/shard_0_3.jsonl ${DIR}/shard_6_9.jsonl
                        -o ${DIR}/bad_merge.jsonl
                ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "merge with a missing shard succeeded")
endif()
if(EXISTS ${DIR}/bad_merge.jsonl)
  message(FATAL_ERROR "failed merge left a partial store behind")
endif()

execute_process(COMMAND ${CLI} merge ${DIR}/shard_0_3.jsonl ${DIR}/shard_3_6.jsonl
                        ${DIR}/shard_6_9.jsonl -o ${DIR}/merged.jsonl
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merge failed (${rc})")
endif()
if(NOT out MATCHES "merged 3 shards \\(9 experiments")
  message(FATAL_ERROR "merge printed no summary:\n${out}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${DIR}/canonical.jsonl ${DIR}/merged.jsonl
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merged store differs from the unsharded store")
endif()

# Crash/resume: truncate a shard store mid-file (a SIGKILLed worker's
# footprint), rerun the same shard command, and the merge must still
# reproduce the canonical store exactly.
file(READ ${DIR}/shard_3_6.jsonl shard_text)
string(LENGTH "${shard_text}" shard_length)
math(EXPR cut_length "${shard_length} / 2")
string(SUBSTRING "${shard_text}" 0 ${cut_length} shard_prefix)
file(WRITE ${DIR}/shard_3_6.jsonl "${shard_prefix}")

execute_process(COMMAND ${CLI} shard 314.omriq --injections 9 --seed 33
                        --approximate --index-range 3:6
                        --store ${DIR}/shard_3_6.jsonl
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard resume after truncation failed (${rc})")
endif()

execute_process(COMMAND ${CLI} merge ${DIR}/shard_0_3.jsonl ${DIR}/shard_3_6.jsonl
                        ${DIR}/shard_6_9.jsonl -o ${DIR}/merged_resumed.jsonl
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merge after shard resume failed (${rc})")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${DIR}/canonical.jsonl ${DIR}/merged_resumed.jsonl
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed shard perturbed the merged store")
endif()

# `analyze` reports the replay accounting persisted in both headers —
# identically, since the merged header's sums equal the finalized ones.
foreach(store canonical merged)
  execute_process(COMMAND ${CLI} analyze ${DIR}/${store}.jsonl
                  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "analyze of ${store} store failed (${rc})")
  endif()
  if(NOT out MATCHES "checkpoint replay: [0-9]+/9 runs fast-forwarded")
    message(FATAL_ERROR "analyze of ${store} store printed no replay accounting:\n${out}")
  endif()
endforeach()
