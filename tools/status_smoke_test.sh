#!/usr/bin/env bash
# Status-endpoint smoke test with real processes: a `nvbitfi serve` daemon is
# polled over HTTP GET /status while a submitted campaign runs.  The reported
# completed-experiment count must be monotonically non-decreasing, the
# mid-flight /metrics exposition must carry the phase histograms and
# per-shard gauges, and the final status must agree with the merged store.
#
# Usage: status_smoke_test.sh <path-to-nvbitfi> [workdir]
set -u

CLI=${1:?usage: status_smoke_test.sh <path-to-nvbitfi> [workdir]}
DIR=${2:-$(mktemp -d)}
mkdir -p "$DIR"
# A slower workload keeps the campaign in flight across several polls.
PROGRAM=351.palm
INJECTIONS=32
ARGS="--injections $INJECTIONS --seed 77 --approximate"

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  [[ -n "${SERVE_PID:-}" ]] && kill "$SERVE_PID" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

# `completed` for campaign 1 out of the /status JSON, "" when no campaign is
# active.  sed keeps the script dependency-free (the JSON is machine-written,
# single-line, keys in a fixed order).
status_completed() {
  "$CLI" status "$DIR/serve.sock" 2>/dev/null \
    | sed -n 's/.*"campaigns":\[{[^}]*"completed":\([0-9]*\).*/\1/p'
}

"$CLI" serve --socket "$DIR/serve.sock" --workdir "$DIR" \
    --inprocess-workers 2 --verbose > "$DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do [[ -S "$DIR/serve.sock" ]] && break; sleep 0.1; done
[[ -S "$DIR/serve.sock" ]] || fail "daemon never bound its socket"

# Idle daemon: the endpoint answers before any campaign exists.
"$CLI" status "$DIR/serve.sock" > "$DIR/status_idle.json" \
    || fail "status request against the idle daemon failed"
grep -q '"active_campaigns":0' "$DIR/status_idle.json" \
    || fail "idle status did not report zero active campaigns"

"$CLI" submit "$PROGRAM" $ARGS --shards 4 --socket "$DIR/serve.sock" \
    --store "$DIR/served.jsonl" > "$DIR/submit.log" 2>&1 &
SUBMIT_PID=$!

# Poll /status while the campaign runs: progress must never move backwards.
LAST=-1
POLLS=0
PROGRESS_SAMPLES=0
while kill -0 "$SUBMIT_PID" 2>/dev/null; do
  COMPLETED=$(status_completed)
  if [[ -n "$COMPLETED" ]]; then
    [[ "$COMPLETED" -ge "$LAST" ]] \
        || fail "completed went backwards: $LAST -> $COMPLETED"
    [[ "$COMPLETED" -le "$INJECTIONS" ]] \
        || fail "completed $COMPLETED exceeds the $INJECTIONS submitted"
    LAST=$COMPLETED
    PROGRESS_SAMPLES=$((PROGRESS_SAMPLES + 1))
  fi
  POLLS=$((POLLS + 1))
  # One mid-flight metrics scrape once the campaign is visibly running.
  if [[ "$PROGRESS_SAMPLES" -eq 2 && ! -s "$DIR/metrics.txt" ]]; then
    "$CLI" status "$DIR/serve.sock" --metrics > "$DIR/metrics.txt" \
        || fail "mid-flight metrics request failed"
  fi
  sleep 0.2
done
wait "$SUBMIT_PID" || { cat "$DIR/submit.log" "$DIR/serve.log" >&2
                        fail "submit did not complete"; }
[[ "$PROGRESS_SAMPLES" -ge 1 ]] || fail "never observed the campaign via /status"
[[ -s "$DIR/metrics.txt" ]] || fail "never scraped /metrics mid-flight"

# The Prometheus exposition carries the phase histograms and fleet gauges.
grep -q '# TYPE nvbitfi_phase_seconds histogram' "$DIR/metrics.txt" \
    || fail "metrics missing the phase histogram type header"
grep -q 'nvbitfi_phase_seconds_bucket{phase="inject",le="+Inf"}' "$DIR/metrics.txt" \
    || fail "metrics missing the inject phase histogram"
grep -q 'nvbitfi_serve_shard_completed{campaign="1",shard="' "$DIR/metrics.txt" \
    || fail "metrics missing per-shard progress gauges"
grep -q 'nvbitfi_serve_worker_heartbeat_age_seconds{fd="' "$DIR/metrics.txt" \
    || fail "metrics missing worker heartbeat gauges"
grep -q 'nvbitfi_serve_active_campaigns 1' "$DIR/metrics.txt" \
    || fail "metrics did not show the active campaign"

# Final state agrees with the merged report: one campaign completed, none
# active, and the merged store holds every submitted experiment.
"$CLI" status "$DIR/serve.sock" > "$DIR/status_final.json" \
    || fail "final status request failed"
grep -q '"completed_campaigns":1' "$DIR/status_final.json" \
    || fail "final status did not count the completed campaign"
grep -q '"active_campaigns":0' "$DIR/status_final.json" \
    || fail "final status still reports an active campaign"
grep -q "merged store:" "$DIR/submit.log" || fail "submit printed no merged store"
RECORDS=$(grep -c '"index"' "$DIR/served.jsonl")
[[ "$RECORDS" -eq "$INJECTIONS" ]] \
    || fail "merged store has $RECORDS records, expected $INJECTIONS"

# Unknown paths 404 without killing the daemon.
"$CLI" status "$DIR/serve.sock" --metrics > /dev/null \
    || fail "daemon did not survive repeated scrapes"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon exited non-zero on SIGTERM"
SERVE_PID=

echo "PASS: /status stayed monotonic over $POLLS polls (peak $LAST/$INJECTIONS), /metrics carried phase + fleet series"
