// nvbitfi — command-line driver for the fault-injection workflow.
//
// Mirrors the real NVBitFI package's convenience scripts: each subcommand is
// one step of Figure 1, with profiles and fault parameters exchanged as text
// files so campaigns can be scripted.
//
//   nvbitfi list
//   nvbitfi golden    <program>
//   nvbitfi profile   <program> [--approximate] [-o profile.txt]
//   nvbitfi select    <profile.txt> [--group 1..8] [--model 1..4]
//                     [--seed N] [-o params.txt]
//   nvbitfi inject    <program> <params.txt>
//   nvbitfi permanent <program> --opcode NAME [--sm N] [--lane N] [--mask HEX]
//   nvbitfi campaign  <program> [--injections N] [--seed N] [--approximate]
//                     [--store FILE.jsonl] [--resume]
//                     [--static-prune | --static-check]
//   nvbitfi analyze   <store.jsonl>  regenerate reports without re-simulating
//   nvbitfi lint      <program|file.sass>  static checks over kernel SASS
//   nvbitfi dictionary [--seed N] [-o dictionary.txt]
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "adaptive/engine.h"
#include "adaptive/report.h"
#include "adaptive/stratum.h"
#include "analysis/anatomy.h"
#include "analysis/json.h"
#include "analysis/merge.h"
#include "analysis/propagation.h"
#include "analysis/result_store.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/campaign.h"
#include "core/campaign_spec.h"
#include "core/extended_models.h"
#include "core/report.h"
#include "sassim/asm/assembler.h"
#include "sassim/asm/disassembler.h"
#include "service/adaptive_runner.h"
#include "service/coordinator.h"
#include "service/protocol.h"
#include "service/shard_runner.h"
#include "service/socket.h"
#include "service/worker.h"
#include "staticanalysis/lint.h"
#include "staticanalysis/static_site.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"
#include "trace/taint_tracker.h"
#include "workloads/workloads.h"

using namespace nvbitfi;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: nvbitfi <command> [args]\n"
               "  list                              list the workload programs\n"
               "  golden <program>                  run uninstrumented, print stats\n"
               "  profile <program> [--approximate] [-o FILE]\n"
               "  select <profile> [--group N] [--model N] [--seed N] [-o FILE]\n"
               "  inject <program> <params-file>    run one transient injection\n"
               "  permanent <program> --opcode NAME [--sm N] [--lane N] [--mask HEX]\n"
               "  campaign <program> [--injections N] [--seed N] [--group N]\n"
               "                     [--approximate]\n"
               "                     [--workers N] [--csv FILE] [--store FILE.jsonl]\n"
               "                     [--resume] [--element f32|f64] [--trace]\n"
               "                     [--static-prune | --static-check]\n"
               "                     [--checkpoints | --no-checkpoints]\n"
               "                     [--trace-events FILE.trace.jsonl]\n"
               "                     [--adaptive] [--confidence C] [--ci-width W]\n"
               "                     [--round-size N] [--min-per-stratum N]\n"
               "                     [--strata-csv FILE]\n"
               "                     --adaptive treats --injections as a sampling "
               "POOL: experiments\n"
               "                     run in rounds steered toward the strata "
               "(kernel / opcode\n"
               "                     group / liveness) with the widest Wilson "
               "intervals, until\n"
               "                     every stratum's interval is narrower than "
               "--ci-width\n"
               "                     --trace follows each fault's propagation "
               "(taint tracking)\n"
               "                     --static-prune skips statically-dead sites;\n"
               "                     --static-check simulates them anyway and "
               "reports violations\n"
               "                     --checkpoints (default) fast-forwards each "
               "injection run's\n"
               "                     pre-fault launches from golden checkpoints; "
               "results are\n"
               "                     bit-identical, only wall-clock time changes\n"
               "  sweep <program> [--sm N] [--seed N] [--approximate] [--workers N]\n"
               "                  [--csv FILE] [--store FILE.jsonl] [--resume]\n"
               "                  [--element f32|f64]  permanent sweep over executed opcodes\n"
               "  analyze <store.jsonl> [--csv FILE] [--json FILE] [--static]\n"
               "                  [--strata] [--strata-csv FILE]\n"
               "                  [--timeline FILE.trace.jsonl]\n"
               "                  regenerate report + SDC anatomy from a result store;\n"
               "                  --static cross-tabulates static liveness verdicts\n"
               "                  against the recorded dynamic outcomes;\n"
               "                  --strata cross-tabulates outcomes by stratum\n"
               "                  (kernel/opcode-group/liveness) with Wilson\n"
               "                  intervals; adaptive stores additionally get a\n"
               "                  round-accounting audit of the persisted schedule;\n"
               "                  --timeline summarizes a --trace-events log\n"
               "                  (per-phase span totals + round/shard markers);\n"
               "                  with --timeline the store argument is optional\n"
               "  lint <program|file.sass> [--allow KIND]...  static analysis checks\n"
               "                  (read-before-def, unreachable code, dead stores,\n"
               "                  constant guards, shared-memory bounds, redundant\n"
               "                  masks, out-of-range shifts); exit 1 when findings\n"
               "                  exist; --allow KIND (repeatable) downgrades a kind\n"
               "                  to a warning that does not affect the exit code\n"
               "  dictionary [--seed N] [-o FILE]   emit a synthetic fault dictionary\n"
               "  disasm <program> [kernel] [-o FILE]  dump a program's kernels\n"
               "  serve --socket PATH [--workdir DIR] [--inprocess-workers N]\n"
               "                  [--shard-workers N] [--heartbeat-timeout SEC]\n"
               "                  [--max-campaigns N] [--verbose]\n"
               "                  campaign service daemon: accepts submissions,\n"
               "                  shards them over workers, merges the results;\n"
               "                  also answers HTTP GET /status (JSON) and\n"
               "                  GET /metrics (Prometheus text) on the socket\n"
               "  status <socket-path> [--metrics]  query a running serve daemon:\n"
               "                  prints the live JSON campaign/worker status, or\n"
               "                  the Prometheus metrics with --metrics\n"
               "  submit --socket PATH <program> [campaign flags] [--shards N]\n"
               "                  [--store FILE.jsonl]  submit a campaign and stream\n"
               "                  progress until the merged report arrives\n"
               "  shard --connect PATH [--shard-workers N]  fleet worker process\n"
               "  shard <program> --index-range A:B --store FILE.jsonl\n"
               "                  [campaign flags]  run one shard standalone\n"
               "  merge -o FILE.jsonl <shard.jsonl>...  merge completed shard\n"
               "                  stores into one canonical store\n"
               "  campaign/sweep/shard handle SIGINT/SIGTERM gracefully: the\n"
               "  result store is already flushed per record, a partial report\n"
               "  is emitted, and --resume continues where the run stopped\n");
  return 2;
}

// SIGINT/SIGTERM: campaigns finish in-flight experiments, flush, and emit a
// partial report; serve drains its poll loop.
std::atomic<bool> g_interrupted{false};
service::Coordinator* g_coordinator = nullptr;

void HandleSignal(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
  if (g_coordinator != nullptr) g_coordinator->RequestStop();
}

void InstallSignalHandlers() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
}

struct Args {
  std::vector<std::string> positional;
  std::string output;
  bool approximate = false;
  int group = 8;
  int model = 1;
  std::uint64_t seed = 1;
  int injections = 100;
  std::string opcode;
  int sm = 0;
  int lane = 0;
  std::uint32_t mask = 1;
  // Concurrent injection runs for campaign/sweep (1 = serial, 0 = all cores).
  int workers = 1;
  std::string csv;
  // Result-store persistence (campaign/sweep) and analyze outputs.
  std::string store;
  bool resume = false;
  std::string json_out;
  analysis::ElementKind element = analysis::ElementKind::kF32;
  // Propagation tracing (campaign): inject with the taint tracker and emit
  // the propagation report alongside the anatomy.
  bool trace = false;
  // Golden-prefix checkpoint replay for campaign injection runs.
  bool checkpoints = true;
  // Static-liveness site handling (campaign) and the analyze cross-tab.
  bool static_prune = false;
  bool static_check = false;
  bool static_xtab = false;
  // Adaptive stratified sampling (campaign/submit) and analyze --strata.
  bool adaptive = false;
  double confidence = 0.95;
  double ci_width = 0.10;
  int round_size = 32;
  int min_per_stratum = 4;
  bool strata = false;
  std::string strata_csv;
  // Campaign service (serve/submit/shard).
  std::string socket_path;
  std::string workdir = ".";
  std::string index_range;  // shard: "A:B"
  std::string connect;      // shard: coordinator socket to serve as a worker
  int shards = 4;           // submit: shard count
  int inprocess_workers = 2;
  int shard_workers = 1;
  double heartbeat_timeout = 60.0;
  int max_campaigns = 0;
  bool verbose = false;
  // Telemetry: Chrome-trace event log (campaign/sweep/shard), the analyze
  // --timeline view over such a log, and `status --metrics` (Prometheus
  // text instead of JSON).
  std::string trace_events;
  std::string timeline;
  bool metrics = false;
  // Lint: kinds downgraded from errors to warnings (repeatable --allow).
  std::vector<std::string> lint_allow;
};

std::optional<Args> ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "-o" || arg == "--output") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.output = *v;
    } else if (arg == "--csv") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.csv = *v;
    } else if (arg == "--approximate") {
      args.approximate = true;
    } else if (arg == "--group") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.group = std::atoi(v->c_str());
    } else if (arg == "--model") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.model = std::atoi(v->c_str());
    } else if (arg == "--seed") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.seed = std::strtoull(v->c_str(), nullptr, 0);
    } else if (arg == "--injections") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.injections = std::atoi(v->c_str());
    } else if (arg == "--opcode") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.opcode = *v;
    } else if (arg == "--sm") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.sm = std::atoi(v->c_str());
    } else if (arg == "--lane") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.lane = std::atoi(v->c_str());
    } else if (arg == "--mask") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.mask = static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 0));
    } else if (arg == "--workers") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.workers = std::atoi(v->c_str());
    } else if (arg == "--store") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.store = *v;
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--trace") {
      args.trace = true;
    } else if (arg == "--checkpoints") {
      args.checkpoints = true;
    } else if (arg == "--no-checkpoints") {
      args.checkpoints = false;
    } else if (arg == "--static-prune") {
      args.static_prune = true;
    } else if (arg == "--static-check") {
      args.static_check = true;
    } else if (arg == "--static") {
      args.static_xtab = true;
    } else if (arg == "--adaptive") {
      args.adaptive = true;
    } else if (arg == "--confidence") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.confidence = std::atof(v->c_str());
    } else if (arg == "--ci-width") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.ci_width = std::atof(v->c_str());
    } else if (arg == "--round-size") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.round_size = std::atoi(v->c_str());
    } else if (arg == "--min-per-stratum") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.min_per_stratum = std::atoi(v->c_str());
    } else if (arg == "--strata") {
      args.strata = true;
    } else if (arg == "--strata-csv") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.strata_csv = *v;
    } else if (arg == "--json") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.json_out = *v;
    } else if (arg == "--socket") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.socket_path = *v;
    } else if (arg == "--workdir") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.workdir = *v;
    } else if (arg == "--index-range") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.index_range = *v;
    } else if (arg == "--connect") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.connect = *v;
    } else if (arg == "--shards") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.shards = std::atoi(v->c_str());
    } else if (arg == "--inprocess-workers") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.inprocess_workers = std::atoi(v->c_str());
    } else if (arg == "--shard-workers") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.shard_workers = std::atoi(v->c_str());
    } else if (arg == "--heartbeat-timeout") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.heartbeat_timeout = std::atof(v->c_str());
    } else if (arg == "--max-campaigns") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.max_campaigns = std::atoi(v->c_str());
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--trace-events") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.trace_events = *v;
    } else if (arg == "--timeline") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.timeline = *v;
    } else if (arg == "--metrics") {
      args.metrics = true;
    } else if (arg == "--allow") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.lint_allow.push_back(*v);
    } else if (arg == "--element") {
      const auto v = next();
      if (!v) return std::nullopt;
      const auto element = analysis::ElementKindFromName(*v);
      if (!element) {
        std::fprintf(stderr, "--element must be f32 or f64\n");
        return std::nullopt;
      }
      args.element = *element;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", std::string(arg).c_str());
      return std::nullopt;
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

// One cache for the whole process: subcommands that need both a golden run
// and a profile (campaign, sweep, inject) share them instead of re-running.
fi::RunCache& ProcessCache() {
  static fi::RunCache cache;
  return cache;
}

// The serializable campaign description the service layer runs from; campaign,
// submit, and standalone shard all build their spec here so every execution
// path describes the identical deterministic experiment sequence.
fi::CampaignSpec BuildSpec(const Args& args, const std::string& program) {
  fi::CampaignSpec spec;
  spec.program = program;
  spec.seed = args.seed;
  spec.num_injections = args.injections;
  spec.group = args.group;
  spec.approximate = args.approximate;
  spec.trace = args.trace;
  spec.checkpoints = args.checkpoints;
  spec.static_mode = args.static_prune   ? "prune"
                     : args.static_check ? "check"
                                         : "off";
  spec.element = std::string(analysis::ElementKindName(args.element));
  spec.adaptive = args.adaptive;
  spec.adaptive_confidence = args.confidence;
  spec.adaptive_target_width = args.ci_width;
  spec.adaptive_round_size = static_cast<std::uint64_t>(args.round_size);
  spec.adaptive_min_per_stratum = static_cast<std::uint64_t>(args.min_per_stratum);
  return spec;
}

// Shared by campaign and submit: the adaptive flags must describe a policy
// the engine can actually run under.
bool ValidateAdaptiveArgs(const Args& args) {
  if (!args.adaptive) return true;
  if (args.approximate) {
    std::fprintf(stderr,
                 "--adaptive needs an exact profile (strata are keyed on "
                 "static liveness verdicts); drop --approximate\n");
    return false;
  }
  if (!(args.confidence > 0.0 && args.confidence < 1.0)) {
    std::fprintf(stderr, "--confidence must be in (0, 1)\n");
    return false;
  }
  if (!(args.ci_width > 0.0 && args.ci_width < 1.0)) {
    std::fprintf(stderr, "--ci-width must be in (0, 1)\n");
    return false;
  }
  if (args.round_size <= 0) {
    std::fprintf(stderr, "--round-size must be positive\n");
    return false;
  }
  if (args.min_per_stratum < 0) {
    std::fprintf(stderr, "--min-per-stratum must be non-negative\n");
    return false;
  }
  return true;
}

const fi::TargetProgram* Lookup(const std::string& name) {
  const fi::TargetProgram* program = workloads::FindWorkload(name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program '%s' (try: nvbitfi list)\n", name.c_str());
  }
  return program;
}

bool WriteOrPrint(const std::string& output, const std::string& content) {
  if (output.empty()) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream file(output);
  if (!file) {
    std::fprintf(stderr, "cannot write '%s'\n", output.c_str());
    return false;
  }
  file << content;
  std::printf("wrote %s (%zu bytes)\n", output.c_str(), content.size());
  return true;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

int CmdList() {
  std::printf("%-14s %7s %8s  %s\n", "program", "static", "dynamic", "description");
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    std::printf("%-14s %7d %8d  %s\n", entry.program->name().c_str(),
                entry.table4_counts.static_kernels, entry.table4_counts.dynamic_kernels,
                entry.description);
  }
  return 0;
}

int CmdGolden(const Args& args) {
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const fi::CampaignRunner runner(*program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  std::printf("stdout: %s", golden.stdout_text.c_str());
  std::printf("exit code            %d\n", golden.exit_code);
  std::printf("static kernels       %llu\n",
              static_cast<unsigned long long>(golden.static_kernels));
  std::printf("dynamic kernels      %llu\n",
              static_cast<unsigned long long>(golden.dynamic_kernels));
  std::printf("thread instructions  %llu\n",
              static_cast<unsigned long long>(golden.thread_instructions));
  std::printf("simulated cycles     %llu\n",
              static_cast<unsigned long long>(golden.cycles));
  std::printf("output bytes         %zu\n", golden.output_file.size());
  return golden.exit_code;
}

int CmdProfile(const Args& args) {
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const fi::CampaignRunner runner(*program);
  const fi::ProgramProfile profile = runner.RunProfiler(
      args.approximate ? fi::ProfilerTool::Mode::kApproximate
                       : fi::ProfilerTool::Mode::kExact,
      sim::DeviceProps{}, nullptr);
  return WriteOrPrint(args.output, profile.Serialize()) ? 0 : 1;
}

int CmdSelect(const Args& args) {
  if (args.positional.empty()) return Usage();
  const auto text = ReadFile(args.positional[0]);
  if (!text) return 1;
  const auto profile = fi::ProgramProfile::Parse(*text);
  if (!profile) {
    std::fprintf(stderr, "malformed profile file\n");
    return 1;
  }
  const auto group = fi::ArchStateIdFromInt(args.group);
  const auto model = fi::BitFlipModelFromInt(args.model);
  if (!group || !model) {
    std::fprintf(stderr, "--group must be 1..8 and --model 1..4 (Table II)\n");
    return 1;
  }
  Rng rng(args.seed);
  const auto params = fi::SelectTransientFault(*profile, *group, *model, rng);
  if (!params) {
    std::fprintf(stderr, "the program executes no instruction in group %s\n",
                 std::string(fi::ArchStateIdName(*group)).c_str());
    return 1;
  }
  return WriteOrPrint(args.output, params->Serialize()) ? 0 : 1;
}

void PrintClassification(const fi::InjectionRecord& record, const fi::RunArtifacts& run,
                         const fi::Classification& c) {
  if (record.activated) {
    std::printf("injection: opcode %s at static index %u, lane %d, SM %d\n",
                std::string(sim::OpcodeName(record.opcode)).c_str(), record.static_index,
                record.lane_id, record.sm_id);
    if (record.corrupted) {
      std::printf("corrupted: %s%d  0x%llx -> 0x%llx (mask 0x%llx)\n",
                  record.pred_target ? "P" : "R", record.target_register,
                  static_cast<unsigned long long>(record.before_bits),
                  static_cast<unsigned long long>(record.after_bits),
                  static_cast<unsigned long long>(record.mask));
    }
  } else {
    std::printf("injection: site not reached (fault not activated)\n");
  }
  std::printf("stdout: %s", run.stdout_text.c_str());
  std::printf("outcome: %s (%s)%s\n", std::string(fi::OutcomeName(c.outcome)).c_str(),
              std::string(fi::SymptomName(c.symptom)).c_str(),
              c.potential_due ? " [potential DUE]" : "");
  for (const std::string& msg : run.dmesg) {
    std::printf("dmesg: %s\n", msg.c_str());
  }
}

int CmdInject(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const auto text = ReadFile(args.positional[1]);
  if (!text) return 1;
  const auto params = fi::TransientFaultParams::Parse(*text);
  if (!params) {
    std::fprintf(stderr, "malformed parameter file\n");
    return 1;
  }
  const fi::CampaignRunner runner(*program, &ProcessCache());
  const fi::RunArtifacts golden = runner.Golden(sim::DeviceProps{});
  fi::TransientInjectorTool injector(*params);
  const fi::RunArtifacts run = runner.Execute(
      &injector, sim::DeviceProps{},
      20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000));
  PrintClassification(injector.record(), run,
                      fi::Classify(golden, run, program->sdc_checker()));
  return 0;
}

int CmdPermanent(const Args& args) {
  if (args.positional.empty() || args.opcode.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const auto opcode = sim::OpcodeFromName(args.opcode);
  if (!opcode) {
    std::fprintf(stderr, "unknown opcode '%s'\n", args.opcode.c_str());
    return 1;
  }
  fi::PermanentFaultParams params;
  params.opcode_id = static_cast<int>(*opcode);
  params.sm_id = args.sm;
  params.lane_id = args.lane;
  params.bit_mask = args.mask;

  const fi::CampaignRunner runner(*program, &ProcessCache());
  const fi::RunArtifacts golden = runner.Golden(sim::DeviceProps{});
  fi::PermanentInjectorTool injector(params);
  const fi::RunArtifacts run = runner.Execute(
      &injector, sim::DeviceProps{},
      20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000));
  std::printf("activations: %llu\n",
              static_cast<unsigned long long>(injector.activations()));
  const fi::Classification c = fi::Classify(golden, run, program->sdc_checker());
  std::printf("stdout: %s", run.stdout_text.c_str());
  std::printf("outcome: %s (%s)%s\n", std::string(fi::OutcomeName(c.outcome)).c_str(),
              std::string(fi::SymptomName(c.symptom)).c_str(),
              c.potential_due ? " [potential DUE]" : "");
  return 0;
}

// Writes the anatomy summary (text to stdout, JSON to --json when given) and,
// for traced campaigns, the propagation report (the JSON document gains a
// "propagation" member; untraced output is unchanged).
int EmitReports(const analysis::AnatomyBreakdown& breakdown,
                const analysis::PropagationBreakdown* propagation, const Args& args) {
  std::printf("\n%s", analysis::AnatomyReportText(breakdown).c_str());
  if (propagation != nullptr) {
    std::printf("\n%s", analysis::PropagationReportText(*propagation).c_str());
  }
  if (!args.json_out.empty()) {
    analysis::json::Value out = analysis::AnatomyReportJson(breakdown);
    if (propagation != nullptr) {
      out.Set("propagation", analysis::PropagationReportJson(*propagation));
    }
    if (!WriteOrPrint(args.json_out, out.Dump() + "\n")) return 1;
  }
  return 0;
}

// --trace-events FILE: installs a process-global Chrome-trace log for the
// duration of one subcommand.  ScopedPhase spans stream into it from every
// layer; the opening "campaign" instant records provenance.
class TraceEventsScope {
 public:
  TraceEventsScope() = default;
  ~TraceEventsScope() {
    if (!active_) return;
    telemetry::TraceLog::SetGlobal(nullptr);
    log_.Close();
  }
  TraceEventsScope(const TraceEventsScope&) = delete;
  TraceEventsScope& operator=(const TraceEventsScope&) = delete;

  bool Begin(const std::string& path, const char* command,
             const fi::CampaignSpec& spec) {
    if (path.empty()) return true;
    std::string error;
    if (!log_.Open(path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return false;
    }
    telemetry::TraceLog::SetGlobal(&log_);
    active_ = true;
    log_.AppendInstant("campaign",
                       {{"command", command},
                        {"program", spec.program},
                        {"injections", Format("%d", spec.num_injections)},
                        {"seed", Format("%llu",
                                        static_cast<unsigned long long>(spec.seed))},
                        {"adaptive", spec.adaptive ? "1" : "0"}});
    return true;
  }

 private:
  telemetry::TraceLog log_;
  bool active_ = false;
};

// analyze --timeline: rebuilds the per-phase breakdown from a stored trace.
// The log is parsed line-by-line (first line "[", then one comma-terminated
// event object per line), so truncated traces from killed runs still load.
int TimelineView(const std::string& path) {
  const auto text = ReadFile(path);  // reports its own error
  if (!text) return 1;
  struct SpanAgg {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  struct Marker {
    double ts_us = 0.0;
    std::string name;
    std::string detail;
  };
  std::vector<Marker> markers;
  std::size_t events = 0;

  std::istringstream stream(*text);
  std::string line;
  while (std::getline(stream, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ',')) {
      line.pop_back();
    }
    if (line.empty() || line == "[" || line == "]") continue;
    const std::optional<analysis::json::Value> event =
        analysis::json::Value::Parse(line);
    if (!event.has_value() || !event->is_object()) continue;
    ++events;
    const std::string ph = event->GetString("ph");
    if (ph == "X") {
      SpanAgg& agg = spans[event->GetString("name")];
      const double dur = event->GetDouble("dur");
      ++agg.count;
      agg.total_us += dur;
      agg.max_us = std::max(agg.max_us, dur);
    } else if (ph == "i") {
      Marker marker;
      marker.ts_us = event->GetDouble("ts");
      marker.name = event->GetString("name");
      if (const analysis::json::Value* event_args = event->Find("args");
          event_args != nullptr && event_args->is_object()) {
        // Flatten the provenance args back into "k=v k=v" for the table.
        std::string detail;
        for (const char* key :
             {"command", "program", "injections", "seed", "adaptive", "round",
              "scheduled", "begin", "end"}) {
          const std::string value = event_args->GetString(key);
          if (value.empty()) continue;
          if (!detail.empty()) detail += ' ';
          detail += Format("%s=%s", key, value.c_str());
        }
        marker.detail = std::move(detail);
      }
      markers.push_back(std::move(marker));
    }
  }
  if (events == 0) {
    std::fprintf(stderr, "'%s' contains no trace events\n", path.c_str());
    return 1;
  }

  std::printf("=== timeline: %s ===\n", path.c_str());
  std::printf("%zu events\n\n", events);
  std::printf("%-18s %10s %12s %12s %12s\n", "phase", "spans", "total s",
              "mean ms", "max ms");
  // Widest phases first: the table answers "where did the time go".
  std::vector<std::pair<std::string, SpanAgg>> rows(spans.begin(), spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  for (const auto& [name, agg] : rows) {
    std::printf("%-18s %10llu %12.3f %12.3f %12.3f\n", name.c_str(),
                static_cast<unsigned long long>(agg.count), agg.total_us * 1e-6,
                agg.count > 0 ? agg.total_us * 1e-3 / static_cast<double>(agg.count)
                              : 0.0,
                agg.max_us * 1e-3);
  }
  if (!markers.empty()) {
    std::printf("\nmarkers:\n");
    for (const Marker& marker : markers) {
      std::printf("  %12.3f ms  %-15s %s\n", marker.ts_us * 1e-3,
                  marker.name.c_str(), marker.detail.c_str());
    }
  }
  return 0;
}

// `nvbitfi status <socket>`: one HTTP/1.0 GET against a running coordinator.
int CmdStatus(const Args& args) {
  std::string addr = args.socket_path;
  if (addr.empty() && !args.positional.empty()) addr = args.positional[0];
  if (addr.empty()) {
    std::fprintf(stderr, "status needs a coordinator socket (positional or --socket)\n");
    return 2;
  }
  std::string error;
  const int fd = service::ConnectUnix(addr, &error);
  if (fd < 0) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const char* path = args.metrics ? "/metrics" : "/status";
  if (!service::SendRaw(fd, Format("GET %s HTTP/1.0\r\n\r\n", path))) {
    std::fprintf(stderr, "cannot send request to %s\n", addr.c_str());
    ::close(fd);
    return 1;
  }
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    std::fprintf(stderr, "malformed response from %s\n", addr.c_str());
    return 1;
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    std::fprintf(stderr, "%s\n", status_line.c_str());
    return 1;
  }
  std::fputs(response.c_str() + header_end + 4, stdout);
  return 0;
}

int CmdCampaign(const Args& args) {
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  if (!fi::ArchStateIdFromInt(args.group)) {
    std::fprintf(stderr, "--group must be 1..8 (Table II)\n");
    return 1;
  }
  if (args.static_prune && args.static_check) {
    std::fprintf(stderr, "--static-prune and --static-check are mutually exclusive\n");
    return 1;
  }
  if ((args.static_prune || args.static_check) && args.approximate) {
    std::fprintf(stderr,
                 "--static-prune/--static-check need an exact profile (site "
                 "resolution replays the exact site stream); drop --approximate\n");
    return 1;
  }
  if (!ValidateAdaptiveArgs(args)) return 1;
  InstallSignalHandlers();
  TraceEventsScope trace_scope;
  if (!trace_scope.Begin(args.trace_events, "campaign",
                         BuildSpec(args, program->name()))) {
    return 1;
  }

  fi::TransientCampaignResult result;
  bool cancelled = false;
  if (args.adaptive) {
    // Adaptive mode: --injections is the pool; the engine schedules rounds
    // until every stratum's interval is narrower than --ci-width.  The store
    // persists each round before it runs, so --resume replays the recorded
    // schedule bit-for-bit.
    service::AdaptiveJob job;
    job.spec = BuildSpec(args, program->name());
    job.store_path = args.store;
    job.workers = args.workers;
    job.resume = args.resume;
    job.cancel = &g_interrupted;
    service::AdaptiveOutcome outcome = service::RunAdaptiveJob(job, &ProcessCache());
    if (!outcome.error.empty()) {
      std::fprintf(stderr, "%s\n", outcome.error.c_str());
      return 1;
    }
    if (!args.store.empty() && outcome.resumed_records > 0) {
      std::printf("resuming: %zu experiments already in %s\n",
                  outcome.resumed_records, args.store.c_str());
    }
    result = std::move(outcome.result);
    cancelled = outcome.cancelled;
    std::fputs(fi::TransientCampaignReport(result, outcome.policy.confidence).c_str(),
               stdout);
    std::fputs(adaptive::StrataReport(outcome.strata, outcome.policy.confidence,
                                      outcome.policy.target_half_width)
                   .c_str(),
               stdout);
    std::fputs(outcome.summary.c_str(), stdout);
    if (!args.strata_csv.empty()) {
      if (!WriteOrPrint(args.strata_csv,
                        adaptive::StrataCsv(outcome.strata,
                                            outcome.policy.confidence))) {
        return 1;
      }
    }
  } else {
    // The campaign runs through the service layer's shard runner with the
    // full index range: with --store every completed run streams to the JSONL
    // store (with its SDC anatomy), --resume skips the experiments a previous
    // interrupted campaign already persisted, and a completed store's header
    // is finalized with the checkpoint-replay accounting for `analyze`.
    service::ShardJob job;
    job.spec = BuildSpec(args, program->name());
    job.store_path = args.store;
    job.workers = args.workers;
    job.resume = args.resume;
    job.finalize = true;
    job.cancel = &g_interrupted;
    service::ShardOutcome outcome = service::RunShardJob(job, &ProcessCache());
    if (!outcome.error.empty()) {
      std::fprintf(stderr, "%s\n", outcome.error.c_str());
      return 1;
    }
    if (!args.store.empty() && outcome.resumed_records > 0) {
      std::printf("resuming: %zu of %d experiments already in %s\n",
                  outcome.resumed_records, args.injections, args.store.c_str());
    }
    result = std::move(outcome.result);
    cancelled = result.cancelled;
    std::fputs(fi::TransientCampaignReport(result).c_str(), stdout);
  }

  // Anatomy + propagation summary: from the store when one is active
  // (resumed runs carry their persisted records), from the in-memory result
  // otherwise.
  analysis::AnatomyConfig anatomy_config;
  anatomy_config.element = args.element;
  analysis::AnatomyBreakdown breakdown;
  std::optional<analysis::PropagationBreakdown> propagation;
  if (!args.store.empty()) {
    std::string error;
    const std::optional<analysis::LoadedStore> loaded =
        analysis::LoadResultStore(args.store, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    breakdown = analysis::RebuildAnatomy(*loaded);
    if (args.trace) propagation = analysis::RebuildPropagation(*loaded);
  } else {
    breakdown = analysis::BuildTransientAnatomy(result, anatomy_config);
    if (args.trace) propagation = analysis::BuildTransientPropagation(result);
  }
  if (EmitReports(breakdown, propagation.has_value() ? &*propagation : nullptr,
                  args) != 0) {
    return 1;
  }

  if (!args.csv.empty()) {
    std::ofstream file(args.csv);
    if (!file) {
      std::fprintf(stderr, "cannot write '%s'\n", args.csv.c_str());
      return 1;
    }
    file << fi::TransientCampaignCsv(result);
    std::printf("\nwrote per-injection CSV to %s\n", args.csv.c_str());
  }
  // Check mode asserts the soundness contract: statically dead must imply
  // dynamically masked.  Any disagreement is a bug in the analysis.
  if (args.static_check && !result.static_violations.empty()) {
    std::fprintf(stderr, "static check failed: %zu violation%s (see report)\n",
                 result.static_violations.size(),
                 result.static_violations.size() == 1 ? "" : "s");
    return 1;
  }
  if (cancelled) {
    std::fprintf(stderr, "interrupted: completed experiments are flushed%s\n",
                 args.store.empty() ? "" : "; continue with --resume");
    return 130;
  }
  return 0;
}

int CmdSweep(const Args& args) {
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const fi::CampaignRunner runner(*program, &ProcessCache());
  const fi::ProgramProfile profile = runner.Profile(
      args.approximate ? fi::ProfilerTool::Mode::kApproximate
                       : fi::ProfilerTool::Mode::kExact,
      sim::DeviceProps{}, nullptr);
  fi::PermanentCampaignConfig config;
  config.seed = args.seed;
  config.sm_id = args.sm;
  config.num_workers = args.workers;
  InstallSignalHandlers();
  config.cancel = &g_interrupted;
  TraceEventsScope trace_scope;
  if (!trace_scope.Begin(args.trace_events, "sweep",
                         BuildSpec(args, program->name()))) {
    return 1;
  }

  std::unique_ptr<analysis::ResultStore> store;
  fi::RunArtifacts golden;
  analysis::AnatomyConfig anatomy_config;
  anatomy_config.element = args.element;
  if (!args.store.empty()) {
    golden = runner.Golden(config.device);
    analysis::StoreMeta meta = analysis::PermanentStoreMeta(
        program->name(), config, profile.ExecutedOpcodes().size(), golden, profile);
    meta.element = args.element;
    std::string error;
    store = analysis::ResultStore::Open(args.store, meta, args.resume, &error);
    if (store == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    config.preloaded = &store->loaded().permanent;
    config.on_run_complete = [&](std::size_t i, const fi::PermanentRun& run) {
      std::optional<analysis::SdcAnatomy> anatomy;
      if (run.classification.outcome == fi::Outcome::kSdc) {
        anatomy = analysis::AnalyzeSdc(golden, run.artifacts, anatomy_config);
      }
      store->AppendPermanent(i, run, anatomy.has_value() ? &*anatomy : nullptr);
    };
    if (!store->loaded().permanent.empty()) {
      std::printf("resuming: %zu experiments already in %s\n",
                  store->loaded().permanent.size(), args.store.c_str());
    }
  }

  const fi::PermanentCampaignResult result =
      runner.RunPermanentCampaign(config, profile);
  std::fputs(fi::PermanentCampaignReport(result).c_str(), stdout);

  analysis::AnatomyBreakdown breakdown;
  if (store != nullptr) {
    store.reset();
    std::string error;
    const std::optional<analysis::LoadedStore> loaded =
        analysis::LoadResultStore(args.store, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    breakdown = analysis::RebuildAnatomy(*loaded);
  } else {
    golden = runner.Golden(config.device);
    breakdown = analysis::BuildPermanentAnatomy(result, golden, anatomy_config);
  }
  if (EmitReports(breakdown, nullptr, args) != 0) return 1;

  if (!args.csv.empty()) {
    std::ofstream file(args.csv);
    if (!file) {
      std::fprintf(stderr, "cannot write '%s'\n", args.csv.c_str());
      return 1;
    }
    file << fi::PermanentCampaignCsv(result);
    std::printf("\nwrote per-opcode CSV to %s\n", args.csv.c_str());
  }
  if (result.cancelled) {
    std::fprintf(stderr, "interrupted: completed experiments are flushed%s\n",
                 args.store.empty() ? "" : "; continue with --resume");
    return 130;
  }
  return 0;
}

// `analyze --static`: re-derives the static liveness verdict for every stored
// injection site and cross-tabulates it against the recorded dynamic outcome.
// The lower-left cell (statically dead, not masked) must stay zero — anything
// there violates the one-sided soundness contract.
int StaticCrossTab(const analysis::LoadedStore& store) {
  if (store.meta.kind == "permanent") {
    std::fprintf(stderr, "--static applies to transient campaign stores only\n");
    return 1;
  }
  const fi::TargetProgram* program = Lookup(store.meta.program);
  if (program == nullptr) return 1;
  const staticanalysis::StaticSiteAnalysis analysis =
      staticanalysis::StaticSiteAnalysis::ForProgram(*program, sim::DeviceProps{});

  // rows: 0 = statically dead, 1 = statically live, 2 = unresolved
  // cols: 0 = Masked, 1 = SDC, 2 = DUE
  std::uint64_t table[3][3] = {};
  // Bit-granular view of the resolved rows: outcome counts by the site's
  // masking-score quartile (fraction of statically dead target bits).
  std::uint64_t score_table[4][3] = {};
  std::uint64_t skipped = 0;  // trivially masked or never-activated runs
  std::uint64_t violations = 0;
  for (const auto& [index, run] : store.transient) {
    (void)index;
    if (run.trivially_masked || !run.record.activated) {
      ++skipped;
      continue;
    }
    const fi::StaticSiteVerdict verdict = analysis.EvaluateStatic(
        run.params.kernel_name, run.record.static_index,
        run.params.destination_register, run.params.bit_flip_model,
        run.params.bit_pattern_value);
    const int row = !verdict.resolved ? 2 : verdict.statically_dead ? 0 : 1;
    int col = 0;
    switch (run.classification.outcome) {
      case fi::Outcome::kMasked: col = 0; break;
      case fi::Outcome::kSdc: col = 1; break;
      case fi::Outcome::kDue: col = 2; break;
    }
    ++table[row][col];
    if (verdict.resolved) {
      ++score_table[adaptive::MaskingScoreBin(verdict.masking_score)][col];
    }
    if ((row == 0 || (verdict.resolved && verdict.flip_dead)) && col != 0) ++violations;
  }

  static constexpr const char* kRowNames[3] = {"statically dead", "statically live",
                                               "unresolved"};
  std::printf("\nstatic liveness vs dynamic outcome (%s store):\n",
              store.meta.static_mode.c_str());
  std::printf("  %-16s %10s %10s %10s\n", "", "Masked", "SDC", "DUE");
  for (int row = 0; row < 3; ++row) {
    std::printf("  %-16s %10llu %10llu %10llu\n", kRowNames[row],
                static_cast<unsigned long long>(table[row][0]),
                static_cast<unsigned long long>(table[row][1]),
                static_cast<unsigned long long>(table[row][2]));
  }
  std::printf("\nstatic masking score vs dynamic outcome (resolved sites):\n");
  std::printf("  %-16s %10s %10s %10s %8s\n", "score bin", "Masked", "SDC", "DUE",
              "masked%");
  for (int bin = 0; bin < 4; ++bin) {
    const std::uint64_t total =
        score_table[bin][0] + score_table[bin][1] + score_table[bin][2];
    if (total == 0) continue;
    std::printf("  %-16s %10llu %10llu %10llu %7.1f%%\n",
                std::string(adaptive::MaskingScoreBinLabel(bin)).c_str(),
                static_cast<unsigned long long>(score_table[bin][0]),
                static_cast<unsigned long long>(score_table[bin][1]),
                static_cast<unsigned long long>(score_table[bin][2]),
                100.0 * static_cast<double>(score_table[bin][0]) /
                    static_cast<double>(total));
  }
  if (skipped > 0) {
    std::printf("  (%llu run%s without an injection site excluded)\n",
                static_cast<unsigned long long>(skipped), skipped == 1 ? "" : "s");
  }
  if (violations > 0) {
    std::fprintf(stderr,
                 "static soundness violated: %llu statically-dead site%s with a "
                 "non-masked outcome\n",
                 static_cast<unsigned long long>(violations),
                 violations == 1 ? "" : "s");
    return 1;
  }
  std::printf("  soundness holds: every statically-dead site was masked\n");
  return 0;
}

// Rebuilds per-stratum tallies for an adaptive store from its header alone:
// each round lists its indexes in allocation order, so the stratum of every
// record follows from the persisted schedule without re-deriving the
// stratification (no simulation, no profiling).
std::vector<adaptive::StratumRow> AdaptiveStoreRows(const analysis::LoadedStore& store) {
  std::vector<adaptive::StratumRow> rows(store.meta.strata.size());
  for (std::size_t s = 0; s < rows.size(); ++s) rows[s].label = store.meta.strata[s];
  for (const adaptive::RoundRecord& round : store.meta.rounds) {
    std::size_t pos = 0;
    for (const adaptive::RoundAllocation& alloc : round.allocations) {
      for (std::uint64_t k = 0; k < alloc.count && pos < round.indexes.size(); ++k) {
        const auto index = static_cast<std::size_t>(round.indexes[pos++]);
        if (alloc.stratum >= rows.size()) continue;
        adaptive::StratumRow& row = rows[alloc.stratum];
        ++row.scheduled;
        const auto run = store.transient.find(index);
        if (run != store.transient.end()) row.counts.Add(run->second.classification);
      }
    }
  }
  // The store does not carry stratum populations, so exhaustion is unknown
  // post hoc; convergence is recomputed from the achieved intervals.
  for (adaptive::StratumRow& row : rows) {
    row.converged =
        adaptive::OutcomeUncertainty(row.counts, store.meta.policy.confidence) <=
        store.meta.policy.target_half_width;
  }
  return rows;
}

// `analyze` on an adaptive store: audits the persisted schedule against the
// records — every scheduled index must hold exactly one record and every
// record must be scheduled — and prints the achieved per-stratum intervals.
int AdaptiveAudit(const analysis::LoadedStore& store) {
  const analysis::StoreMeta& meta = store.meta;
  std::uint64_t scheduled = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  std::set<std::size_t> seen;
  for (const adaptive::RoundRecord& round : meta.rounds) {
    for (const std::uint64_t index : round.indexes) {
      ++scheduled;
      const auto i = static_cast<std::size_t>(index);
      if (!seen.insert(i).second) {
        ++duplicates;
      } else if (store.transient.find(i) == store.transient.end()) {
        ++missing;
      }
    }
  }
  std::uint64_t unscheduled = 0;
  for (const auto& [index, run] : store.transient) {
    (void)run;
    if (seen.find(index) == seen.end()) ++unscheduled;
  }

  std::printf("\nadaptive schedule: %zu round%s, %llu experiments scheduled "
              "from a pool of %llu, %zu strata\n",
              meta.rounds.size(), meta.rounds.size() == 1 ? "" : "s",
              static_cast<unsigned long long>(scheduled),
              static_cast<unsigned long long>(meta.num_experiments),
              meta.strata.size());
  std::printf("  policy: %.0f%% confidence, target half-width %.3f, round "
              "size %llu, min per stratum %llu\n",
              100.0 * meta.policy.confidence, meta.policy.target_half_width,
              static_cast<unsigned long long>(meta.policy.round_size),
              static_cast<unsigned long long>(meta.policy.min_per_stratum));
  std::fputs(adaptive::StrataReport(AdaptiveStoreRows(store), meta.policy.confidence,
                                    meta.policy.target_half_width)
                 .c_str(),
             stdout);
  if (missing > 0 || duplicates > 0 || unscheduled > 0) {
    std::fprintf(stderr,
                 "round accounting: MISMATCH — %llu scheduled without a "
                 "record, %llu scheduled twice, %llu records outside the "
                 "schedule\n",
                 static_cast<unsigned long long>(missing),
                 static_cast<unsigned long long>(duplicates),
                 static_cast<unsigned long long>(unscheduled));
    return 1;
  }
  std::printf("round accounting: OK — %zu records match the %zu-round schedule\n",
              store.transient.size(), meta.rounds.size());
  return 0;
}

// `analyze --strata`: re-derives each record's stratum key (kernel / opcode
// group / static liveness — the same key the adaptive engine stratifies on)
// and cross-tabulates the recorded outcomes with Wilson intervals.  Works on
// any transient store; runs without a site (trivially masked, never
// activated) pool under "(no-site)" since they carry no resolvable site.
int StrataCrossTab(const analysis::LoadedStore& store, const Args& args) {
  if (store.meta.kind == "permanent") {
    std::fprintf(stderr, "--strata applies to transient campaign stores only\n");
    return 1;
  }
  const fi::TargetProgram* program = Lookup(store.meta.program);
  if (program == nullptr) return 1;
  const staticanalysis::StaticSiteAnalysis analysis =
      staticanalysis::StaticSiteAnalysis::ForProgram(*program, sim::DeviceProps{});
  const double confidence =
      store.meta.adaptive ? store.meta.policy.confidence : 0.95;

  std::map<std::string, adaptive::StratumRow> by_label;  // sorted label order
  for (const auto& [index, run] : store.transient) {
    (void)index;
    std::string label = "(no-site)";
    if (!run.trivially_masked && run.record.activated) {
      const fi::StaticSiteVerdict verdict = analysis.EvaluateStatic(
          run.params.kernel_name, run.record.static_index,
          run.params.destination_register);
      std::string group = "?";
      std::string liveness = "unresolved";
      if (verdict.resolved) {
        group = std::string(adaptive::OpcodeGroupLabel(run.record.opcode));
        if (verdict.statically_dead) {
          liveness = "dead";
        } else {
          // Mirror adaptive::StratumLabelFor: live sites split by their
          // bit-liveness masking-score quartile.
          liveness = "live/";
          liveness += adaptive::MaskingScoreBinLabel(
              adaptive::MaskingScoreBin(verdict.masking_score));
        }
      }
      label = run.params.kernel_name + "/" + group + "/" + liveness;
    }
    adaptive::StratumRow& row = by_label[label];
    row.label = label;
    ++row.scheduled;
    row.counts.Add(run.classification);
  }
  std::vector<adaptive::StratumRow> rows;
  rows.reserve(by_label.size());
  for (auto& [label, row] : by_label) {
    (void)label;
    rows.push_back(std::move(row));
  }
  std::printf("\n%s", adaptive::StrataReport(rows, confidence, 0.0).c_str());
  if (!args.strata_csv.empty()) {
    if (!WriteOrPrint(args.strata_csv, adaptive::StrataCsv(rows, confidence))) {
      return 1;
    }
  }
  return 0;
}

int CmdAnalyze(const Args& args) {
  // --timeline works from the trace log alone; the store is optional with it.
  if (!args.timeline.empty()) {
    const int code = TimelineView(args.timeline);
    if (code != 0 || args.positional.empty()) return code;
  }
  if (args.positional.empty()) return Usage();
  std::string error;
  const std::optional<analysis::LoadedStore> loaded =
      analysis::LoadResultStore(args.positional[0], &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (loaded->completed() == 0) {
    std::fprintf(stderr, "'%s' contains no completed experiment records\n",
                 args.positional[0].c_str());
    return 1;
  }
  if (loaded->completed() < loaded->meta.num_experiments) {
    std::printf("note: partial store — %zu of %llu experiments completed\n\n",
                loaded->completed(),
                static_cast<unsigned long long>(loaded->meta.num_experiments));
  }

  std::string csv;
  if (loaded->meta.kind == "permanent") {
    const fi::PermanentCampaignResult result = RebuildPermanentResult(*loaded);
    std::fputs(fi::PermanentCampaignReport(result).c_str(), stdout);
    csv = fi::PermanentCampaignCsv(result);
  } else {
    const fi::TransientCampaignResult result = RebuildTransientResult(*loaded);
    std::fputs(fi::TransientCampaignReport(result).c_str(), stdout);
    csv = fi::TransientCampaignCsv(result);
  }
  std::optional<analysis::PropagationBreakdown> propagation;
  if (loaded->meta.kind != "permanent" && loaded->meta.trace) {
    propagation = analysis::RebuildPropagation(*loaded);
  }
  if (EmitReports(analysis::RebuildAnatomy(*loaded),
                  propagation.has_value() ? &*propagation : nullptr, args) != 0) {
    return 1;
  }
  if (!args.csv.empty()) {
    std::ofstream file(args.csv);
    if (!file) {
      std::fprintf(stderr, "cannot write '%s'\n", args.csv.c_str());
      return 1;
    }
    file << csv;
    std::printf("\nwrote CSV to %s\n", args.csv.c_str());
  }
  if (loaded->meta.kind == "transient" && loaded->meta.adaptive) {
    const int code = AdaptiveAudit(*loaded);
    if (code != 0) return code;
  }
  if (args.strata) {
    const int code = StrataCrossTab(*loaded, args);
    if (code != 0) return code;
  }
  if (args.static_xtab) return StaticCrossTab(*loaded);
  return 0;
}

// Lints every kernel of a built-in workload (harvested by running it once) or
// of a .sass assembly file.  Exit 1 when any non-allowed finding is reported,
// so the lint can gate CI; --allow KIND (repeatable) downgrades a finding
// kind to a warning that is still printed but does not fail the run.
int CmdLint(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& target = args.positional[0];

  static constexpr staticanalysis::LintKind kAllKinds[] = {
      staticanalysis::LintKind::kReadBeforeDef,
      staticanalysis::LintKind::kUnreachableBlock,
      staticanalysis::LintKind::kDeadStore,
      staticanalysis::LintKind::kConstantGuard,
      staticanalysis::LintKind::kSharedOutOfRange,
      staticanalysis::LintKind::kRedundantMask,
      staticanalysis::LintKind::kShiftOutOfRange,
  };
  std::set<staticanalysis::LintKind> allowed;
  for (const std::string& name : args.lint_allow) {
    bool known = false;
    for (const staticanalysis::LintKind kind : kAllKinds) {
      if (name == staticanalysis::LintKindName(kind)) {
        allowed.insert(kind);
        known = true;
        break;
      }
    }
    if (!known) {
      std::string names;
      for (const staticanalysis::LintKind kind : kAllKinds) {
        if (!names.empty()) names += ", ";
        names += staticanalysis::LintKindName(kind);
      }
      std::fprintf(stderr, "--allow '%s' is not a lint kind (one of: %s)\n",
                   name.c_str(), names.c_str());
      return 2;
    }
  }

  std::vector<sim::KernelSource> kernels;
  if (const fi::TargetProgram* program = workloads::FindWorkload(target);
      program != nullptr) {
    kernels = staticanalysis::HarvestKernels(*program, sim::DeviceProps{});
  } else {
    const auto text = ReadFile(target);
    if (!text) {
      std::fprintf(stderr, "'%s' is neither a workload (try: nvbitfi list) nor a "
                           "readable assembly file\n",
                   target.c_str());
      return 1;
    }
    sim::AssemblyResult assembled = sim::Assemble(*text);
    if (!assembled.ok) {
      std::fprintf(stderr, "%s: %s\n", target.c_str(), assembled.error.c_str());
      return 1;
    }
    kernels = std::move(assembled.kernels);
  }
  if (kernels.empty()) {
    std::fprintf(stderr, "'%s' contains no kernels\n", target.c_str());
    return 1;
  }
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const sim::KernelSource& kernel : kernels) {
    const std::vector<staticanalysis::LintFinding> findings =
        staticanalysis::LintKernel(kernel);
    for (const staticanalysis::LintFinding& finding : findings) {
      if (allowed.count(finding.kind) != 0) {
        ++warnings;
      } else {
        ++errors;
      }
    }
    std::fputs(staticanalysis::LintReport(kernel, findings).c_str(), stdout);
  }
  const std::size_t total = errors + warnings;
  std::printf("%zu kernel%s linted, %zu finding%s", kernels.size(),
              kernels.size() == 1 ? "" : "s", total, total == 1 ? "" : "s");
  if (warnings > 0) {
    std::printf(" (%zu allowed as warning%s)", warnings, warnings == 1 ? "" : "s");
  }
  std::printf("\n");
  return errors == 0 ? 0 : 1;
}

// ---- Campaign service subcommands (serve / submit / shard / merge) ----

int CmdServe(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "serve needs --socket PATH\n");
    return 2;
  }
  service::CoordinatorOptions options;
  options.socket_path = args.socket_path;
  options.workdir = args.workdir;
  options.inprocess_workers = args.inprocess_workers;
  options.shard_workers = args.shard_workers;
  options.heartbeat_timeout = args.heartbeat_timeout;
  options.max_campaigns = args.max_campaigns;
  options.verbose = args.verbose;
  service::Coordinator coordinator(options, &ProcessCache());
  std::string error;
  if (!coordinator.Start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  g_coordinator = &coordinator;
  InstallSignalHandlers();
  std::printf("serving campaigns on %s\n", args.socket_path.c_str());
  std::fflush(stdout);
  const int code = coordinator.Serve();
  g_coordinator = nullptr;
  return code;
}

int CmdSubmit(const Args& args) {
  if (args.positional.empty()) return Usage();
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "submit needs --socket PATH\n");
    return 2;
  }
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  if (!ValidateAdaptiveArgs(args)) return 1;
  const fi::CampaignSpec spec = BuildSpec(args, program->name());

  std::string error;
  const int fd = service::ConnectUnix(args.socket_path, &error);
  if (fd < 0) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  service::SendLine(fd, service::HelloLine("client"));
  service::SendLine(fd, service::SubmitLine(spec.Serialize(), args.shards, args.store));

  service::LineBuffer buffer;
  char chunk[4096];
  int code = 1;
  bool done = false;
  while (!done) {
    std::optional<std::string> line = buffer.PopLine();
    if (!line.has_value()) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        std::fprintf(stderr, "server closed the connection\n");
        break;
      }
      buffer.Append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::optional<service::Message> message = service::ParseMessage(*line);
    if (!message.has_value()) continue;
    if (message->type == "error") {
      std::fprintf(stderr, "rejected: %s\n", message->error.c_str());
      done = true;
    } else if (message->type == "accepted") {
      std::printf("campaign %llu accepted\n",
                  static_cast<unsigned long long>(message->campaign));
      std::fflush(stdout);
    } else if (message->type == "progress") {
      std::fprintf(stderr, "campaign %llu: %llu/%llu experiments\n",
                   static_cast<unsigned long long>(message->campaign),
                   static_cast<unsigned long long>(message->completed),
                   static_cast<unsigned long long>(message->total));
    } else if (message->type == "report") {
      std::fputs(message->text.c_str(), stdout);
    } else if (message->type == "done") {
      if (message->ok) {
        std::printf("merged store: %s\n", message->store.c_str());
        code = 0;
      } else {
        std::fprintf(stderr, "campaign failed: %s\n", message->error.c_str());
      }
      done = true;
    }
  }
  ::close(fd);
  return code;
}

int CmdShard(const Args& args) {
  // Fleet mode: dial the coordinator and execute whatever it assigns.
  if (!args.connect.empty()) {
    std::string error;
    const int fd = service::ConnectUnix(args.connect, &error);
    if (fd < 0) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    service::WorkerOptions options;
    options.shard_workers = args.shard_workers;
    options.verbose = args.verbose;
    return service::WorkerLoop(fd, &ProcessCache(), options);
  }

  // Standalone mode: run one index range into a crash-safe shard store.
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const std::optional<fi::ShardRange> range = fi::ParseShardRange(args.index_range);
  if (!range.has_value()) {
    std::fprintf(stderr, "shard needs --index-range A:B (half-open, B >= A)\n");
    return 2;
  }
  if (args.store.empty()) {
    std::fprintf(stderr, "shard needs --store FILE.jsonl\n");
    return 2;
  }
  InstallSignalHandlers();
  TraceEventsScope trace_scope;
  if (!trace_scope.Begin(args.trace_events, "shard",
                         BuildSpec(args, program->name()))) {
    return 1;
  }

  service::ShardJob job;
  job.spec = BuildSpec(args, program->name());
  job.begin = range->begin;
  job.end = range->end;
  job.store_path = args.store;
  job.workers = args.workers;
  job.resume = true;  // crash-safe by default: rerun continues the store
  job.shard_records = true;
  job.cancel = &g_interrupted;
  const service::ShardOutcome outcome = service::RunShardJob(job, &ProcessCache());
  if (!outcome.error.empty()) {
    std::fprintf(stderr, "%s\n", outcome.error.c_str());
    return 1;
  }
  std::printf("shard [%zu, %zu): %llu of %zu experiments in %s\n", range->begin,
              range->end,
              static_cast<unsigned long long>(outcome.result.CompletedRuns()),
              range->size(), args.store.c_str());
  if (outcome.cancelled) {
    std::fprintf(stderr, "interrupted: rerun the same command to resume\n");
    return 130;
  }
  return 0;
}

int CmdMerge(const Args& args) {
  if (args.output.empty()) {
    std::fprintf(stderr, "merge needs -o FILE.jsonl for the merged store\n");
    return 2;
  }
  if (args.positional.empty()) {
    std::fprintf(stderr, "merge needs at least one shard store\n");
    return 2;
  }
  std::string error;
  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeShardStores(args.positional, args.output, &error);
  if (!summary.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("merged %zu shard%s (%llu experiments, program %s) into %s\n",
              summary->num_shards, summary->num_shards == 1 ? "" : "s",
              static_cast<unsigned long long>(summary->num_experiments),
              summary->meta.program.c_str(), args.output.c_str());
  return 0;
}

int CmdDictionary(const Args& args) {
  const fi::FaultDictionary dict = fi::FaultDictionary::Synthetic(args.seed);
  return WriteOrPrint(args.output, dict.Serialize()) ? 0 : 1;
}

int CmdDisasm(const Args& args) {
  if (args.positional.empty()) return Usage();
  const fi::TargetProgram* program = Lookup(args.positional[0]);
  if (program == nullptr) return 1;
  const std::string kernel_filter =
      args.positional.size() > 1 ? args.positional[1] : "";

  // Run the program once so it loads its modules, then dump the SASS the
  // NVBit layer would see.
  sim::Context ctx;
  program->Run(ctx);
  std::string out;
  for (const auto& module : ctx.modules()) {
    for (const auto& fn : module->functions()) {
      if (!kernel_filter.empty() && fn->name() != kernel_filter) continue;
      out += sim::Disassemble(fn->source());
      out += "\n";
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "no kernel matched '%s'\n", kernel_filter.c_str());
    return 1;
  }
  return WriteOrPrint(args.output, out) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  InitLogLevelFromEnv();             // NVBITFI_LOG=debug|info|warn|error
  telemetry::InitTelemetryFromEnv();  // NVBITFI_TELEMETRY=off disables
  const std::string command = argv[1];
  const auto args = ParseArgs(argc, argv, 2);
  if (!args) return Usage();

  if (command == "list") return CmdList();
  if (command == "golden") return CmdGolden(*args);
  if (command == "profile") return CmdProfile(*args);
  if (command == "select") return CmdSelect(*args);
  if (command == "inject") return CmdInject(*args);
  if (command == "permanent") return CmdPermanent(*args);
  if (command == "campaign") return CmdCampaign(*args);
  if (command == "sweep") return CmdSweep(*args);
  if (command == "analyze") return CmdAnalyze(*args);
  if (command == "serve") return CmdServe(*args);
  if (command == "status") return CmdStatus(*args);
  if (command == "submit") return CmdSubmit(*args);
  if (command == "shard") return CmdShard(*args);
  if (command == "merge") return CmdMerge(*args);
  if (command == "lint") return CmdLint(*args);
  if (command == "dictionary") return CmdDictionary(*args);
  if (command == "disasm") return CmdDisasm(*args);
  return Usage();
}
