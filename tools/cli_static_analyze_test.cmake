# Static site analysis end to end, through real stores:
#   1. check mode simulates every site and must report zero violations;
#   2. prune mode skips statically-dead sites and must reproduce the
#      baseline's outcome distribution bit for bit;
#   3. `analyze --static` cross-tabulates stored records against re-derived
#      static verdicts and must find the soundness contract intact.

# Pulls the "outcomes at ..% confidence" block out of a campaign report; the
# block is a pure function of the outcome counts, so equality of the blocks is
# equality of the distributions.
macro(extract_distribution report_var dist_var)
  string(REGEX MATCH "outcomes at [^\n]*\n[^=]*potential DUEs: [0-9]+"
         ${dist_var} "${${report_var}}")
  if("${${dist_var}}" STREQUAL "")
    message(FATAL_ERROR "report has no outcome block:\n${${report_var}}")
  endif()
endmacro()

execute_process(COMMAND ${CLI} campaign 314.omriq --injections 20 --seed 9 --group 5
                OUTPUT_VARIABLE baseline_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline campaign failed (${rc})")
endif()
extract_distribution(baseline_out baseline_dist)

# Check mode: every non-trivial site is simulated AND statically judged; a
# statically-dead site with a non-masked outcome fails the command.
file(REMOVE ${WORKDIR}/cli_static_check.jsonl)
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 20 --seed 9 --group 5
                        --static-check --store ${WORKDIR}/cli_static_check.jsonl
                OUTPUT_VARIABLE check_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "static-check campaign failed (${rc}):\n${check_out}")
endif()
if(NOT check_out MATCHES "static check: [0-9]+ sites checked, [0-9]+ statically dead, 0 violations")
  message(FATAL_ERROR "static-check campaign printed no clean check line:\n${check_out}")
endif()
extract_distribution(check_out check_dist)
if(NOT check_dist STREQUAL baseline_dist)
  message(FATAL_ERROR "--static-check changed the outcome distribution:\n"
                      "baseline:\n${baseline_dist}\nchecked:\n${check_dist}")
endif()

# Prune mode: dead sites are skipped (synthesized Masked records), yet the
# distribution must match the baseline exactly.
file(REMOVE ${WORKDIR}/cli_static_prune.jsonl)
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 20 --seed 9 --group 5
                        --static-prune --store ${WORKDIR}/cli_static_prune.jsonl
                OUTPUT_VARIABLE prune_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "static-prune campaign failed (${rc}):\n${prune_out}")
endif()
if(NOT prune_out MATCHES "statically pruned \\(dead site, simulation skipped\\): [1-9]")
  message(FATAL_ERROR "static-prune campaign pruned nothing:\n${prune_out}")
endif()
extract_distribution(prune_out prune_dist)
if(NOT prune_dist STREQUAL baseline_dist)
  message(FATAL_ERROR "--static-prune changed the outcome distribution:\n"
                      "baseline:\n${baseline_dist}\npruned:\n${prune_dist}")
endif()

# A pruned store resumes as a pruned campaign (static_mode is part of the
# resume identity), and a mode mismatch is rejected.
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 20 --seed 9 --group 5
                        --resume --store ${WORKDIR}/cli_static_prune.jsonl
                ERROR_VARIABLE resume_err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "resuming a pruned store without --static-prune succeeded")
endif()

# Cross-tab: both stores must show the contract holding; the checked store
# carries real simulations for the dead sites, so its dead row is populated.
execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_static_check.jsonl --static
                OUTPUT_VARIABLE xtab_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze --static of the checked store failed (${rc}):\n${xtab_out}")
endif()
if(NOT xtab_out MATCHES "statically dead +[1-9][0-9]* +0 +0")
  message(FATAL_ERROR "cross-tab has no simulated statically-dead sites:\n${xtab_out}")
endif()
if(NOT xtab_out MATCHES "soundness holds")
  message(FATAL_ERROR "cross-tab reported a soundness violation:\n${xtab_out}")
endif()

execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_static_prune.jsonl --static
                OUTPUT_VARIABLE prune_xtab_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze --static of the pruned store failed (${rc}):\n${prune_xtab_out}")
endif()
if(NOT prune_xtab_out MATCHES "soundness holds")
  message(FATAL_ERROR "pruned-store cross-tab reported a violation:\n${prune_xtab_out}")
endif()
