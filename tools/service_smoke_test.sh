#!/usr/bin/env bash
# Campaign-service smoke test with real processes: a `nvbitfi serve` daemon,
# external `nvbitfi shard --connect` fleet workers, one of which is SIGKILLed
# mid-campaign so the coordinator reassigns its shard — and the merged store
# must still be byte-identical to an unsharded `nvbitfi campaign` run.
#
# Usage: service_smoke_test.sh <path-to-nvbitfi> [workdir]
set -u

CLI=${1:?usage: service_smoke_test.sh <path-to-nvbitfi> [workdir]}
DIR=${2:-$(mktemp -d)}
mkdir -p "$DIR"
# 351.palm is one of the slower workloads, which keeps the campaign running
# long enough for the mid-flight SIGKILL below to land while shards are
# genuinely in progress.
PROGRAM=351.palm
ARGS="--injections 32 --seed 77 --approximate"

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  [[ -n "${SERVE_PID:-}" ]] && kill "$SERVE_PID" 2>/dev/null
  [[ -n "${W1_PID:-}" ]] && kill "$W1_PID" 2>/dev/null
  [[ -n "${W2_PID:-}" ]] && kill "$W2_PID" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

# Canonical store: the unsharded single-process campaign.
"$CLI" campaign "$PROGRAM" $ARGS --store "$DIR/canonical.jsonl" \
    > "$DIR/canonical.log" 2>&1 || fail "canonical campaign failed"

# Daemon with no in-process workers: every shard goes to the fleet.
"$CLI" serve --socket "$DIR/serve.sock" --workdir "$DIR" \
    --inprocess-workers 0 --heartbeat-timeout 5 --max-campaigns 1 --verbose \
    > "$DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do [[ -S "$DIR/serve.sock" ]] && break; sleep 0.1; done
[[ -S "$DIR/serve.sock" ]] || fail "daemon never bound its socket"

"$CLI" shard --connect "$DIR/serve.sock" > "$DIR/worker1.log" 2>&1 &
W1_PID=$!

"$CLI" submit "$PROGRAM" $ARGS --shards 4 --socket "$DIR/serve.sock" \
    --store "$DIR/served.jsonl" > "$DIR/submit.log" 2>&1 &
SUBMIT_PID=$!

# Let the lone worker get partway into the campaign, then SIGKILL it.  Its
# in-flight shard times out at the heartbeat deadline and is reassigned to
# the replacement worker, which resumes the crash-safe shard store.
for _ in $(seq 100); do
  ls "$DIR"/campaign_*_shard_*.jsonl > /dev/null 2>&1 && break
  sleep 0.1
done
sleep 0.5
kill -9 "$W1_PID" 2>/dev/null || fail "worker 1 exited before the kill"
W1_PID=

"$CLI" shard --connect "$DIR/serve.sock" > "$DIR/worker2.log" 2>&1 &
W2_PID=$!

wait "$SUBMIT_PID" || { cat "$DIR/submit.log" "$DIR/serve.log" >&2
                        fail "submit did not complete after the worker kill"; }

grep -q "merged store:" "$DIR/submit.log" || fail "submit printed no merged store"
cmp "$DIR/canonical.jsonl" "$DIR/served.jsonl" \
    || fail "served store differs from the unsharded canonical store"
grep -q "lost its worker; requeued" "$DIR/serve.log" \
    || echo "note: campaign finished before the kill took effect" >&2

# max-campaigns=1: the daemon exits on its own after the merge.
wait "$SERVE_PID" || fail "daemon exited non-zero"
SERVE_PID=

echo "PASS: fleet campaign survived a SIGKILLed worker, store byte-identical"
