#!/usr/bin/env bash
# Adaptive-campaign smoke test through the real binary: a stratified
# `campaign --adaptive` run must stop early (schedule fewer experiments than
# the pool), its store must be byte-identical regardless of worker count, and
# `analyze` must reconcile every stored record against the persisted round
# schedule ("round accounting: OK").
#
# Usage: adaptive_smoke_test.sh <path-to-nvbitfi> [workdir]
set -u

CLI=${1:?usage: adaptive_smoke_test.sh <path-to-nvbitfi> [workdir]}
DIR=${2:-$(mktemp -d)}
mkdir -p "$DIR"
PROGRAM=314.omriq
POOL=200
ARGS="--adaptive --injections $POOL --seed 2021 --confidence 0.90 --ci-width 0.15"

fail() { echo "FAIL: $*" >&2; exit 1; }

"$CLI" campaign "$PROGRAM" $ARGS --store "$DIR/adaptive.jsonl" \
    > "$DIR/adaptive.log" 2>&1 || fail "adaptive campaign failed"

# Early stop: converged strata are retired, so the schedule must cover less
# than the full pool.
scheduled=$(grep -oE "[0-9]+/$POOL pool experiments scheduled" "$DIR/adaptive.log" \
    | cut -d/ -f1)
[[ -n "$scheduled" ]] || fail "report carries no scheduling summary"
[[ "$scheduled" -lt "$POOL" ]] \
    || fail "early stop never fired: all $POOL pool experiments ran"
grep -q "converged" "$DIR/adaptive.log" || fail "no stratum converged"

# The canonical adaptive store is independent of the worker count.
"$CLI" campaign "$PROGRAM" $ARGS --workers 4 --store "$DIR/adaptive_w4.jsonl" \
    > "$DIR/adaptive_w4.log" 2>&1 || fail "adaptive campaign (4 workers) failed"
cmp "$DIR/adaptive.jsonl" "$DIR/adaptive_w4.jsonl" \
    || fail "worker count changed the store bytes"

# analyze audits the persisted schedule against the records.
"$CLI" analyze "$DIR/adaptive.jsonl" > "$DIR/analyze.log" 2>&1 \
    || fail "analyze failed on the adaptive store"
grep -q "round accounting: OK" "$DIR/analyze.log" \
    || fail "analyze did not reconcile the round schedule"
grep -q "strata at 90% confidence" "$DIR/analyze.log" \
    || fail "analyze printed no per-stratum intervals"

echo "PASS: adaptive campaign stopped early ($scheduled/$POOL runs)," \
     "store worker-invariant, round accounting reconciled"
