# End-to-end CLI pipeline: profile -> select -> inject, through real files.
execute_process(COMMAND ${CLI} profile 314.omriq -o ${WORKDIR}/cli_test.profile
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "profile step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} select ${WORKDIR}/cli_test.profile --group 8
                        --model 1 --seed 5 -o ${WORKDIR}/cli_test.params
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "select step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} inject 314.omriq ${WORKDIR}/cli_test.params
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inject step failed (${rc})")
endif()
if(NOT out MATCHES "outcome: (SDC|DUE|Masked)")
  message(FATAL_ERROR "inject step produced no classification:\n${out}")
endif()
