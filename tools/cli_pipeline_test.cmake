# End-to-end CLI pipeline: profile -> select -> inject, through real files.
execute_process(COMMAND ${CLI} profile 314.omriq -o ${WORKDIR}/cli_test.profile
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "profile step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} select ${WORKDIR}/cli_test.profile --group 8
                        --model 1 --seed 5 -o ${WORKDIR}/cli_test.params
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "select step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} inject 314.omriq ${WORKDIR}/cli_test.params
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inject step failed (${rc})")
endif()
if(NOT out MATCHES "outcome: (SDC|DUE|Masked)")
  message(FATAL_ERROR "inject step produced no classification:\n${out}")
endif()

# Parallel engine determinism: the same campaign at 1 and 4 workers must
# produce identical per-injection results (the CSV excludes wall-clock).
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --workers 1
                        --csv ${WORKDIR}/cli_test_serial.csv
                OUTPUT_VARIABLE serial_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial campaign step failed (${rc})")
endif()
if(NOT serial_out MATCHES "wall clock on 1 worker")
  message(FATAL_ERROR "serial campaign did not report 1 worker:\n${serial_out}")
endif()

execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --workers 4
                        --csv ${WORKDIR}/cli_test_parallel.csv
                OUTPUT_VARIABLE parallel_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel campaign step failed (${rc})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/cli_test_serial.csv
                        ${WORKDIR}/cli_test_parallel.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial and 4-worker campaign CSVs differ")
endif()
