# End-to-end CLI pipeline: profile -> select -> inject, through real files.
execute_process(COMMAND ${CLI} profile 314.omriq -o ${WORKDIR}/cli_test.profile
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "profile step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} select ${WORKDIR}/cli_test.profile --group 8
                        --model 1 --seed 5 -o ${WORKDIR}/cli_test.params
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "select step failed (${rc})")
endif()

execute_process(COMMAND ${CLI} inject 314.omriq ${WORKDIR}/cli_test.params
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inject step failed (${rc})")
endif()
if(NOT out MATCHES "outcome: (SDC|DUE|Masked)")
  message(FATAL_ERROR "inject step produced no classification:\n${out}")
endif()

# Parallel engine determinism: the same campaign at 1 and 4 workers must
# produce identical per-injection results (the CSV excludes wall-clock).
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --workers 1
                        --csv ${WORKDIR}/cli_test_serial.csv
                OUTPUT_VARIABLE serial_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial campaign step failed (${rc})")
endif()
if(NOT serial_out MATCHES "wall clock on 1 worker")
  message(FATAL_ERROR "serial campaign did not report 1 worker:\n${serial_out}")
endif()

execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --workers 4
                        --csv ${WORKDIR}/cli_test_parallel.csv
                OUTPUT_VARIABLE parallel_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel campaign step failed (${rc})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/cli_test_serial.csv
                        ${WORKDIR}/cli_test_parallel.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial and 4-worker campaign CSVs differ")
endif()

# Result store + resume: a campaign streamed to a JSONL store, truncated
# partway (a killed campaign's footprint), then resumed must match the
# uninterrupted run bit-for-bit; `analyze` regenerates the CSV from the
# store alone.
file(REMOVE ${WORKDIR}/cli_test_store.jsonl)
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --store ${WORKDIR}/cli_test_store.jsonl
                        --csv ${WORKDIR}/cli_test_stored.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stored campaign step failed (${rc})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/cli_test_serial.csv
                        ${WORKDIR}/cli_test_stored.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "storing a campaign changed its CSV")
endif()

file(READ ${WORKDIR}/cli_test_store.jsonl store_text)
string(LENGTH "${store_text}" store_length)
math(EXPR cut_length "${store_length} / 2")
string(SUBSTRING "${store_text}" 0 ${cut_length} store_prefix)
file(WRITE ${WORKDIR}/cli_test_cut.jsonl "${store_prefix}")

execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --store ${WORKDIR}/cli_test_cut.jsonl
                        --resume --csv ${WORKDIR}/cli_test_resumed.csv
                OUTPUT_VARIABLE resume_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed campaign step failed (${rc})")
endif()
if(NOT resume_out MATCHES "resuming: [0-9]+ of 6 experiments")
  message(FATAL_ERROR "resume did not report preloaded experiments:\n${resume_out}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/cli_test_serial.csv
                        ${WORKDIR}/cli_test_resumed.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed campaign CSV differs from the uninterrupted run")
endif()

execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_test_cut.jsonl
                        --csv ${WORKDIR}/cli_test_analyzed.csv
                OUTPUT_VARIABLE analyze_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze step failed (${rc})")
endif()
if(NOT analyze_out MATCHES "SDC anatomy")
  message(FATAL_ERROR "analyze produced no anatomy report:\n${analyze_out}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/cli_test_serial.csv
                        ${WORKDIR}/cli_test_analyzed.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze CSV differs from the campaign's own CSV")
endif()

# Traced campaign -> analyze round-trip: --trace attaches the propagation
# tracer, the store carries the per-run records, and `analyze` regenerates
# the propagation report from the store alone.
file(REMOVE ${WORKDIR}/cli_test_traced.jsonl)
execute_process(COMMAND ${CLI} campaign 314.omriq --injections 6 --seed 21
                        --approximate --trace
                        --store ${WORKDIR}/cli_test_traced.jsonl
                OUTPUT_VARIABLE traced_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced campaign step failed (${rc})")
endif()
if(NOT traced_out MATCHES "fault propagation: [0-9]+ traced runs")
  message(FATAL_ERROR "traced campaign printed no propagation report:\n${traced_out}")
endif()

execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_test_traced.jsonl
                OUTPUT_VARIABLE traced_analyze_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze of traced store failed (${rc})")
endif()
if(NOT traced_analyze_out MATCHES "fault propagation: [0-9]+ traced runs")
  message(FATAL_ERROR "analyze of a traced store printed no propagation report:\n${traced_analyze_out}")
endif()

# `analyze` diagnostics: missing, header-only, and version-mismatched stores
# must fail with a non-zero exit code, not print an empty report.
execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_test_missing.jsonl
                ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "analyze of a missing store succeeded")
endif()

file(READ ${WORKDIR}/cli_test_traced.jsonl traced_store_text)
string(FIND "${traced_store_text}" "\n" header_end)
math(EXPR header_end "${header_end} + 1")
string(SUBSTRING "${traced_store_text}" 0 ${header_end} traced_store_header)
file(WRITE ${WORKDIR}/cli_test_headeronly.jsonl "${traced_store_header}")
execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_test_headeronly.jsonl
                ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "analyze of a header-only store succeeded")
endif()
if(NOT err MATCHES "no completed experiment records")
  message(FATAL_ERROR "header-only store diagnostic missing:\n${err}")
endif()

file(WRITE ${WORKDIR}/cli_test_badversion.jsonl
     "{\"nvbitfi_result_store\": 1, \"kind\": \"transient\"}\n")
execute_process(COMMAND ${CLI} analyze ${WORKDIR}/cli_test_badversion.jsonl
                ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "analyze of a version-mismatched store succeeded")
endif()
if(NOT err MATCHES "unsupported store version")
  message(FATAL_ERROR "version-mismatch diagnostic missing:\n${err}")
endif()
