// Table XII — telemetry overhead across the workload suite.
//
// For every workload: campaign wall-clock with telemetry fully on (global
// registry + installed trace log, the worst case) against the
// NVBITFI_TELEMETRY=off baseline on identical seeds.  The outcome columns
// must agree bit for bit — spans observe the campaign, they never steer it —
// so the only admissible difference is wall-clock time.  The per-phase span
// counts from the on-run are reported to show what the overhead bought.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const int injections = bench::InjectionsPerProgram(30);
  const std::uint64_t seed = bench::BenchSeed();
  const int workers = bench::Workers(1);
  std::printf("Table XII: telemetry overhead (%d injections per program, seed "
              "%llu, %d worker%s)\n\n",
              injections, static_cast<unsigned long long>(seed), workers,
              workers == 1 ? "" : "s");
  std::printf("%-14s %10s %10s %9s %8s %8s %6s\n", "program", "off(s)",
              "on(s)", "overhead", "spans", "ff-spans", "match");

  const std::string trace_path = "/tmp/nvbitfi_table12.trace.jsonl";
  double total_off = 0.0, total_on = 0.0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::TargetProgram& program = *entry.program;
    const fi::CampaignRunner runner(program);

    fi::TransientCampaignConfig config;
    config.seed = seed;
    config.num_injections = injections;
    config.num_workers = workers;

    telemetry::SetTelemetryEnabled(false);
    const auto off_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult off = runner.RunTransientCampaign(config);
    const double off_seconds = Seconds(off_start);

    telemetry::SetTelemetryEnabled(true);
    telemetry::TraceLog log;
    std::string error;
    if (!log.Open(trace_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    telemetry::TraceLog::SetGlobal(&log);
    const auto on_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult on = runner.RunTransientCampaign(config);
    const double on_seconds = Seconds(on_start);
    telemetry::TraceLog::SetGlobal(nullptr);
    log.Close();

    const bool match = on.counts.masked == off.counts.masked &&
                       on.counts.sdc == off.counts.sdc &&
                       on.counts.due == off.counts.due &&
                       on.counts.potential_due == off.counts.potential_due &&
                       on.TotalInjectionCycles() == off.TotalInjectionCycles();
    std::uint64_t spans = 0;
    for (int phase = 0; phase < telemetry::kPhaseCount; ++phase) {
      spans += on.phases.counts[phase];
    }
    total_off += off_seconds;
    total_on += on_seconds;

    std::printf("%-14s %10.3f %10.3f %8.1f%% %8llu %8llu %6s\n",
                program.name().c_str(), off_seconds, on_seconds,
                off_seconds > 0 ? 100.0 * (on_seconds - off_seconds) / off_seconds
                                : 0.0,
                static_cast<unsigned long long>(spans),
                static_cast<unsigned long long>(
                    on.phases.CountFor(telemetry::Phase::kFastForward)),
                match ? "yes" : "NO");
  }
  std::remove(trace_path.c_str());

  std::printf("\nsuite wall-clock: telemetry off %.3f s, on %.3f s (%+.1f%%)\n",
              total_off, total_on,
              total_off > 0 ? 100.0 * (total_on - total_off) / total_off : 0.0);
  return 0;
}
