// Table IV — "SpecACCEL OpenACC 1.2 benchmark programs".
//
// Runs the golden (uninstrumented) configuration of every proxy program and
// prints measured static / dynamic kernel counts next to the paper's values,
// plus dynamic-instruction and simulated-cycle totals.  Measured kernel
// counts must equal Table IV exactly — the proxies preserve the kernel
// structure of the originals.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/campaign.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  std::printf("Table IV: SpecACCEL OpenACC 1.2 benchmark programs (proxy suite)\n");
  std::printf("%-14s | %-44s | %7s %7s | %7s %7s | %12s | %12s | %s\n", "Program",
              "Description", "Stat", "Dyn", "Tbl.Sta", "Tbl.Dyn", "thread-instr",
              "sim-cycles", "ok");
  bench::PrintRule(150);

  bool all_ok = true;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
    const bool ok =
        golden.static_kernels == static_cast<std::uint64_t>(entry.table4_counts.static_kernels) &&
        golden.dynamic_kernels == static_cast<std::uint64_t>(entry.table4_counts.dynamic_kernels) &&
        golden.exit_code == 0 && !golden.timed_out && golden.cuda_errors.empty();
    all_ok = all_ok && ok;
    std::printf("%-14s | %-44s | %7llu %7llu | %7d %7d | %12llu | %12llu | %s\n",
                entry.program->name().c_str(), entry.description,
                static_cast<unsigned long long>(golden.static_kernels),
                static_cast<unsigned long long>(golden.dynamic_kernels),
                entry.table4_counts.static_kernels, entry.table4_counts.dynamic_kernels,
                static_cast<unsigned long long>(golden.thread_instructions),
                static_cast<unsigned long long>(golden.cycles), ok ? "yes" : "NO");
  }
  std::printf("\n%s\n", all_ok ? "All programs match Table IV."
                               : "MISMATCH against Table IV detected.");
  return all_ok ? 0 : 1;
}
