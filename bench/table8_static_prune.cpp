// Table VIII — static site pruning across the workload suite.
//
// For every workload: the fraction of the dynamic injection-site population
// whose corruption target is statically dead (per injection group), and the
// measured campaign wall-clock with --static-prune against the unpruned
// baseline on identical seeds.  The outcome columns must agree bit for bit —
// pruning only skips simulations whose result is already decided.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "staticanalysis/static_site.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const int injections = bench::InjectionsPerProgram(20);
  std::printf("Table VIII: static liveness site pruning (group 5 campaigns, "
              "%d injections each)\n\n",
              injections);
  std::printf("%-14s %9s %9s %9s %10s %10s %8s %6s\n", "program", "dead%g5",
              "dead%g7", "dead%g8", "base(s)", "prune(s)", "speedup", "match");

  double total_base = 0.0, total_prune = 0.0;
  int pruned_programs = 0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::TargetProgram& program = *entry.program;
    const staticanalysis::StaticSiteAnalysis analysis =
        staticanalysis::StaticSiteAnalysis::ForProgram(program, sim::DeviceProps{});
    const fi::CampaignRunner runner(program);

    fi::TransientCampaignConfig config;
    config.seed = 11;
    config.num_injections = injections;
    config.group = fi::ArchStateId::kGNoDest;

    const auto base_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult baseline = runner.RunTransientCampaign(config);
    const double base_seconds = Seconds(base_start);

    const fi::ProgramProfile& profile = baseline.profile;
    const double dead5 = analysis.DeadFraction(profile, fi::ArchStateId::kGNoDest);
    const double dead7 = analysis.DeadFraction(profile, fi::ArchStateId::kGGppr);
    const double dead8 = analysis.DeadFraction(profile, fi::ArchStateId::kGGp);

    config.static_mode = fi::StaticSiteMode::kPrune;
    config.static_oracle = &analysis;
    const auto prune_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult pruned = runner.RunTransientCampaign(config);
    const double prune_seconds = Seconds(prune_start);

    const bool match = pruned.counts.masked == baseline.counts.masked &&
                       pruned.counts.sdc == baseline.counts.sdc &&
                       pruned.counts.due == baseline.counts.due &&
                       pruned.counts.potential_due == baseline.counts.potential_due;
    if (pruned.statically_pruned > 0) ++pruned_programs;
    total_base += base_seconds;
    total_prune += prune_seconds;

    std::printf("%-14s %8.1f%% %8.1f%% %8.1f%% %10.3f %10.3f %7.2fx %6s\n",
                program.name().c_str(), 100.0 * dead5, 100.0 * dead7,
                100.0 * dead8, base_seconds, prune_seconds,
                prune_seconds > 0 ? base_seconds / prune_seconds : 0.0,
                match ? "yes" : "NO");
  }

  std::printf("\n%d of 15 programs pruned a nonzero fraction of sites\n",
              pruned_programs);
  std::printf("suite wall-clock: baseline %.3f s, pruned %.3f s (%.2fx)\n",
              total_base, total_prune,
              total_prune > 0 ? total_base / total_prune : 0.0);
  std::printf("\ndead%%gN = population fraction of group-N injection draws whose\n"
              "corruption target is statically dead (group 5: no-destination\n"
              "instructions, 7: GPR+predicate writers, 8: GPR writers).\n");
  return 0;
}
