// Figure 3 — "Relative outcomes for permanent faults".
//
// One permanent-fault run per executed opcode of every program (the paper
// runs one per ISA opcode and weights by dynamic instruction share; unused
// opcodes carry zero weight, so sweeping only executed opcodes — the Fig. 5
// optimisation — yields the same weighted distribution).  Prints weighted
// SDC / DUE / Masked shares per program and the aggregate (paper: masked
// drops to 17.4% for permanent faults vs 57.6% for transient).
#include <cstdio>

#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const std::uint64_t seed = bench::BenchSeed();
  std::printf("Figure 3: permanent-fault outcomes, weighted by opcode dynamic-"
              "instruction share (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-14s | %8s %8s %8s | %9s %11s\n", "Program", "SDC%", "DUE%", "Masked%",
              "opcodes", "activations");
  bench::PrintRule(72);

  fi::WeightedOutcomes total;
  double total_weight = 0.0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);

    fi::PermanentCampaignConfig config;
    config.seed = seed;
    const fi::PermanentCampaignResult result =
        runner.RunPermanentCampaign(config, profile);

    std::uint64_t activations = 0;
    for (const fi::PermanentRun& run : result.runs) activations += run.activations;

    const double w = result.weighted.total();
    std::printf("%-14s | %s | %9zu %11llu\n", entry.program->name().c_str(),
                bench::OutcomePcts(w > 0 ? 100.0 * result.weighted.sdc / w : 0.0,
                                   w > 0 ? 100.0 * result.weighted.due / w : 0.0,
                                   w > 0 ? 100.0 * result.weighted.masked / w : 0.0)
                    .c_str(),
                result.executed_opcodes,
                static_cast<unsigned long long>(activations));
    std::fflush(stdout);

    total += result.weighted;
    total_weight += w;
  }

  bench::PrintRule(72);
  std::printf("%-14s | %s\n", "aggregate",
              bench::OutcomePcts(total_weight > 0 ? 100.0 * total.sdc / total_weight : 0.0,
                                 total_weight > 0 ? 100.0 * total.due / total_weight : 0.0,
                                 total_weight > 0 ? 100.0 * total.masked / total_weight : 0.0)
                  .c_str());
  std::printf("%-14s | %8s %8s %8.1f   (paper: permanent faults leave only "
              "17.4%% masked)\n",
              "paper", "-", "-", 17.4);
  return 0;
}
