// Figure 5 — "Total campaign times (assuming 100 transient faults)".
//
// For every program, aggregates simulated cycles for the two campaign types,
// exactly as the paper composes them:
//   transient campaign = profiling run + 100 transient injection runs,
//   permanent campaign = one injection run per *executed* opcode (the profile
//                        lets unused opcodes be skipped).
// Per-run costs are measured (mean over a sample of runs) and scaled by the
// campaign sizes.  The paper observes transient campaigns typically take
// about twice as long as permanent ones, ranging from slightly faster to 5x.
//
// The sample runs execute on a WorkerPool (NVBITFI_BENCH_WORKERS, default all
// cores) with per-sample Rng streams pre-forked in serial order, so the
// numbers are identical at any worker count.  A final section runs the same
// Fig. 5-style campaign through the parallel engine at 1 worker and at N
// workers and reports the wall-clock speedup (campaign runs are
// embarrassingly parallel, so this approaches linear).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/parallel.h"
#include "core/run_cache.h"

using namespace nvbitfi;  // NOLINT: bench brevity
// Mean run cost: campaigns pay the short (crashed) runs and the long
// (hung-until-watchdog) runs alike, so the expected per-run cost is the mean.
using bench::Mean;

int main() {
  const std::uint64_t seed = bench::BenchSeed();
  const int samples = 9;
  constexpr int kTransientFaults = 100;  // as in the paper's figure
  fi::WorkerPool pool(bench::Workers());
  std::printf("Figure 5: total campaign times, simulated Gcycles "
              "(100 transient faults; permanent sweep over executed opcodes; "
              "%d workers)\n\n",
              pool.workers());
  std::printf("%-14s | %14s | %9s %14s | %12s\n", "Program", "transient", "opcodes",
              "permanent", "trans/perm");
  bench::PrintRule(74);

  double ratio_min = 1e300, ratio_max = 0, ratio_sum = 0;
  int count = 0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const std::uint64_t watchdog =
        20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

    // Campaigns amortise one profiling run; approximate profiling is the
    // paper's recommended choice when exact profiling time is unacceptable
    // (§III-A), so the campaign composition uses it.
    fi::RunArtifacts profiling_run;
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, &profiling_run);

    Rng rng(Rng::SeedFrom(seed, entry.program->name() + "/fig5"));
    std::vector<Rng> transient_streams, permanent_streams;
    for (int i = 0; i < samples; ++i) transient_streams.push_back(rng.Fork());
    const std::vector<sim::Opcode> executed = profile.ExecutedOpcodes();
    for (int i = 0; i < samples && !executed.empty(); ++i) {
      permanent_streams.push_back(rng.Fork());
    }

    std::vector<double> transient_cycles(transient_streams.size(), -1.0);
    pool.ParallelFor(transient_streams.size(), [&](std::size_t i) {
      Rng& experiment = transient_streams[i];
      const auto params = fi::SelectTransientFault(
          profile, fi::ArchStateId::kGGp, fi::BitFlipModel::kFlipSingleBit, experiment);
      if (!params) return;
      fi::TransientInjectorTool injector(*params);
      // Every experiment pays at least one uninstrumented-run's worth of
      // fixed campaign cost (process launch, golden comparison), even when
      // the injected run dies early.
      transient_cycles[i] =
          std::max(static_cast<double>(runner.Execute(&injector, device, watchdog).cycles),
                   static_cast<double>(golden.cycles));
    });

    std::vector<double> permanent_cycles(permanent_streams.size(), -1.0);
    pool.ParallelFor(permanent_streams.size(), [&](std::size_t i) {
      Rng& experiment = permanent_streams[i];
      fi::PermanentFaultParams params;
      params.opcode_id = static_cast<int>(
          executed[experiment.UniformInt(0, executed.size() - 1)]);
      params.sm_id = 0;
      params.lane_id = static_cast<int>(experiment.UniformInt(0, sim::kWarpSize - 1));
      params.bit_mask = 1u << experiment.UniformInt(0, 31);
      fi::PermanentInjectorTool injector(params);
      permanent_cycles[i] =
          std::max(static_cast<double>(runner.Execute(&injector, device, watchdog).cycles),
                   static_cast<double>(golden.cycles));
    });

    std::erase_if(transient_cycles, [](double v) { return v < 0.0; });
    std::erase_if(permanent_cycles, [](double v) { return v < 0.0; });

    const double transient_total =
        static_cast<double>(profiling_run.cycles) +
        kTransientFaults * Mean(transient_cycles);
    const double permanent_total =
        static_cast<double>(executed.size()) * Mean(permanent_cycles);
    const double ratio = permanent_total > 0 ? transient_total / permanent_total : 0.0;

    std::printf("%-14s | %13.3fG | %9zu %13.3fG | %11.2fx\n",
                entry.program->name().c_str(), transient_total * 1e-9, executed.size(),
                permanent_total * 1e-9, ratio);
    std::fflush(stdout);

    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    ratio_sum += ratio;
    ++count;
  }

  bench::PrintRule(74);
  std::printf("transient/permanent ratio: mean %.2fx, range %.2fx-%.2fx\n",
              ratio_sum / count, ratio_min, ratio_max);
  std::printf("(paper: transient campaigns typically ~2x permanent, from slightly "
              "faster to 5x; 16-41 executed opcodes per program)\n");

  // Parallel engine: the same Fig. 5-style campaign at 1 worker and at N.
  // The shared RunCache means the golden run and profile are paid once, and
  // pre-forked Rng streams make the two campaigns bit-identical.
  const fi::TargetProgram* target = workloads::FindWorkload("314.omriq");
  if (target != nullptr) {
    fi::RunCache cache;
    const fi::CampaignRunner campaign_runner(*target, &cache);
    fi::TransientCampaignConfig config;
    config.seed = seed;
    config.num_injections = bench::InjectionsPerProgram(30);
    config.profiling = fi::ProfilerTool::Mode::kApproximate;

    config.num_workers = 1;
    const fi::TransientCampaignResult serial =
        campaign_runner.RunTransientCampaign(config);
    config.num_workers = bench::Workers(8);
    const fi::TransientCampaignResult parallel =
        campaign_runner.RunTransientCampaign(config);

    bool identical = serial.counts.masked == parallel.counts.masked &&
                     serial.counts.sdc == parallel.counts.sdc &&
                     serial.counts.due == parallel.counts.due;
    for (std::size_t i = 0; identical && i < serial.injections.size(); ++i) {
      identical = serial.injections[i].params == parallel.injections[i].params;
    }

    std::printf("\nparallel campaign engine (%s, %d injections):\n",
                target->name().c_str(), config.num_injections);
    std::printf("  1 worker:  %7.3f s wall clock\n", serial.wall_seconds);
    std::printf("  %d workers: %7.3f s wall clock -> %.2fx speedup\n",
                parallel.workers, parallel.wall_seconds,
                parallel.wall_seconds > 0
                    ? serial.wall_seconds / parallel.wall_seconds
                    : 0.0);
    std::printf("  results bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO (BUG)");
    std::printf("  golden/profile cache: %llu golden + %llu profiling runs "
                "for both campaigns\n",
                static_cast<unsigned long long>(cache.golden_runs()),
                static_cast<unsigned long long>(cache.profile_runs()));
  }
  return 0;
}
