// Figure 5 — "Total campaign times (assuming 100 transient faults)".
//
// For every program, aggregates simulated cycles for the two campaign types,
// exactly as the paper composes them:
//   transient campaign = profiling run + 100 transient injection runs,
//   permanent campaign = one injection run per *executed* opcode (the profile
//                        lets unused opcodes be skipped).
// Per-run costs are measured (median over a sample of runs) and scaled by the
// campaign sizes.  The paper observes transient campaigns typically take
// about twice as long as permanent ones, ranging from slightly faster to 5x.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

// Mean run cost: campaigns pay the short (crashed) runs and the long
// (hung-until-watchdog) runs alike, so the expected per-run cost is the mean.
double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

int main() {
  const std::uint64_t seed = bench::BenchSeed();
  const int samples = 9;
  constexpr int kTransientFaults = 100;  // as in the paper's figure
  std::printf("Figure 5: total campaign times, simulated Gcycles "
              "(100 transient faults; permanent sweep over executed opcodes)\n\n");
  std::printf("%-14s | %14s | %9s %14s | %12s\n", "Program", "transient", "opcodes",
              "permanent", "trans/perm");
  bench::PrintRule(74);

  double ratio_min = 1e300, ratio_max = 0, ratio_sum = 0;
  int count = 0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const std::uint64_t watchdog =
        20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

    // Campaigns amortise one profiling run; approximate profiling is the
    // paper's recommended choice when exact profiling time is unacceptable
    // (§III-A), so the campaign composition uses it.
    fi::RunArtifacts profiling_run;
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, &profiling_run);

    Rng rng(Rng::SeedFrom(seed, entry.program->name() + "/fig5"));
    std::vector<double> transient_cycles;
    for (int i = 0; i < samples; ++i) {
      Rng experiment = rng.Fork();
      const auto params = fi::SelectTransientFault(
          profile, fi::ArchStateId::kGGp, fi::BitFlipModel::kFlipSingleBit, experiment);
      if (!params) continue;
      fi::TransientInjectorTool injector(*params);
      // Every experiment pays at least one uninstrumented-run's worth of
      // fixed campaign cost (process launch, golden comparison), even when
      // the injected run dies early.
      transient_cycles.push_back(
          std::max(static_cast<double>(runner.Execute(&injector, device, watchdog).cycles),
                   static_cast<double>(golden.cycles)));
    }

    const std::vector<sim::Opcode> executed = profile.ExecutedOpcodes();
    std::vector<double> permanent_cycles;
    for (int i = 0; i < samples && !executed.empty(); ++i) {
      Rng experiment = rng.Fork();
      fi::PermanentFaultParams params;
      params.opcode_id = static_cast<int>(
          executed[experiment.UniformInt(0, executed.size() - 1)]);
      params.sm_id = 0;
      params.lane_id = static_cast<int>(experiment.UniformInt(0, sim::kWarpSize - 1));
      params.bit_mask = 1u << experiment.UniformInt(0, 31);
      fi::PermanentInjectorTool injector(params);
      permanent_cycles.push_back(
          std::max(static_cast<double>(runner.Execute(&injector, device, watchdog).cycles),
                   static_cast<double>(golden.cycles)));
    }

    const double transient_total =
        static_cast<double>(profiling_run.cycles) +
        kTransientFaults * Mean(transient_cycles);
    const double permanent_total =
        static_cast<double>(executed.size()) * Mean(permanent_cycles);
    const double ratio = permanent_total > 0 ? transient_total / permanent_total : 0.0;

    std::printf("%-14s | %13.3fG | %9zu %13.3fG | %11.2fx\n",
                entry.program->name().c_str(), transient_total * 1e-9, executed.size(),
                permanent_total * 1e-9, ratio);
    std::fflush(stdout);

    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    ratio_sum += ratio;
    ++count;
  }

  bench::PrintRule(74);
  std::printf("transient/permanent ratio: mean %.2fx, range %.2fx-%.2fx\n",
              ratio_sum / count, ratio_min, ratio_max);
  std::printf("(paper: transient campaigns typically ~2x permanent, from slightly "
              "faster to 5x; 16-41 executed opcodes per program)\n");
  return 0;
}
