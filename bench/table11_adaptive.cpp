// Table XI — adaptive stratified sampling vs uniform exhaustive campaigns.
//
// For each workload, one pool of candidate injections two ways.  Uniform:
// every pool draw is simulated, giving per-stratum ground-truth outcome
// rates.  Adaptive: the engine stratifies the same pool (kernel / opcode
// group / liveness), runs rounds, steers budget toward the strata with the
// widest Wilson intervals, and retires strata that converge to the target
// half-width.  Both sides share one RunCache and the identical deterministic
// draw sequence, so the comparison isolates the sampling policy.
//
// The acceptance columns: `runs%` (adaptive experiments as a share of the
// pool — the claim is ≤50% on most workloads) and `agree` (every sampled
// stratum's ground-truth SDC rate falls inside the adaptive campaign's
// achieved Wilson interval).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "core/statistics.h"
#include "service/adaptive_runner.h"
#include "service/shard_runner.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

int PoolSize() {
  if (const char* env = std::getenv("NVBITFI_BENCH_POOL")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 200;
}

std::size_t ProgramLimit(std::size_t total) {
  if (const char* env = std::getenv("NVBITFI_BENCH_PROGRAMS")) {
    const int v = std::atoi(env);
    if (v > 0 && static_cast<std::size_t>(v) < total) {
      return static_cast<std::size_t>(v);
    }
    return total;
  }
  return total < 6 ? total : 6;
}

}  // namespace

int main() {
  const int pool = PoolSize();
  const std::uint64_t seed = bench::BenchSeed();
  const int workers = bench::Workers(4);

  fi::CampaignSpec base;
  base.seed = seed;
  base.num_injections = pool;
  base.adaptive = true;
  base.adaptive_confidence = 0.90;
  base.adaptive_target_width = 0.15;
  base.adaptive_round_size = 32;
  base.adaptive_min_per_stratum = 4;

  const std::vector<workloads::WorkloadEntry> all = workloads::AllWorkloads();
  const std::size_t limit = ProgramLimit(all.size());
  std::printf("Table XI: adaptive stratified sampling vs uniform exhaustion "
              "(pool %d, seed %llu, %d workers,\n"
              "          %.0f%% confidence, ±%.2f target half-width; %zu of %zu "
              "programs — NVBITFI_BENCH_PROGRAMS=0 for all)\n\n",
              pool, static_cast<unsigned long long>(seed), workers,
              100.0 * base.adaptive_confidence, base.adaptive_target_width, limit,
              all.size());
  std::printf("%-14s %8s %8s %7s %7s %10s %10s %7s %6s\n", "program", "uniform",
              "adaptive", "runs%", "strata", "converged", "exhausted", "rounds",
              "agree");

  fi::RunCache cache;
  std::size_t half_or_better = 0;
  std::size_t all_agree = 0;
  for (std::size_t p = 0; p < limit; ++p) {
    fi::CampaignSpec spec = base;
    spec.program = all[p].program->name();

    // Uniform ground truth: the identical pool, every draw simulated.  The
    // shard runner shares the cache and the deterministic per-index streams.
    fi::CampaignSpec uniform = spec;
    uniform.adaptive = false;
    service::ShardJob ground;
    ground.spec = uniform;
    ground.workers = workers;
    const service::ShardOutcome truth = service::RunShardJob(ground, &cache);
    if (!truth.ok) {
      std::fprintf(stderr, "%s: uniform campaign failed: %s\n",
                   spec.program.c_str(), truth.error.c_str());
      return 1;
    }

    service::AdaptiveJob job;
    job.spec = spec;
    job.workers = workers;
    const service::AdaptiveOutcome adaptive = service::RunAdaptiveJob(job, &cache);
    if (!adaptive.ok) {
      std::fprintf(stderr, "%s: adaptive campaign failed: %s\n",
                   spec.program.c_str(), adaptive.error.c_str());
      return 1;
    }

    // Ground-truth per-stratum rates come from the SAME stratification the
    // adaptive engine derived (both sides preview the same draw pool).
    std::string error;
    const std::optional<service::AdaptiveSetup> setup =
        service::BuildAdaptiveSetup(spec, &cache, &error);
    if (!setup.has_value()) {
      std::fprintf(stderr, "%s: setup failed: %s\n", spec.program.c_str(),
                   error.c_str());
      return 1;
    }
    std::vector<fi::OutcomeCounts> truth_counts(setup->stratification.num_strata());
    for (std::size_t i = 0; i < truth.result.injections.size(); ++i) {
      truth_counts[setup->stratification.stratum_of[i]].Add(
          truth.result.injections[i].classification);
    }

    // Agreement: for every stratum the adaptive campaign sampled, the
    // ground-truth SDC rate must lie inside its achieved Wilson interval.
    std::size_t converged = 0;
    std::size_t exhausted = 0;
    bool agree = true;
    for (std::size_t s = 0; s < adaptive.strata.size(); ++s) {
      const adaptive::StratumRow& row = adaptive.strata[s];
      if (row.converged) ++converged;
      if (row.exhausted) ++exhausted;
      if (row.counts.total() == 0) continue;
      const fi::OutcomeCounts& gt = truth_counts[s];
      if (gt.total() == 0) continue;
      const double gt_sdc =
          static_cast<double>(gt.sdc) / static_cast<double>(gt.total());
      const fi::ProportionEstimate interval = fi::EstimateProportion(
          row.counts.sdc, row.counts.total(), adaptive.policy.confidence);
      if (gt_sdc < interval.lower - 1e-9 || gt_sdc > interval.upper + 1e-9) {
        agree = false;
      }
    }

    const double ratio = bench::Pct(adaptive.scheduled, adaptive.pool);
    if (ratio <= 50.0) ++half_or_better;
    if (agree) ++all_agree;
    std::printf("%-14s %8llu %8llu %6.1f%% %7zu %10zu %10zu %7zu %6s\n",
                spec.program.c_str(),
                static_cast<unsigned long long>(adaptive.pool),
                static_cast<unsigned long long>(adaptive.scheduled), ratio,
                adaptive.strata.size(), converged, exhausted, adaptive.rounds,
                agree ? "yes" : "NO");
  }

  std::printf("\n%zu/%zu programs finished with <= 50%% of the uniform runs; "
              "%zu/%zu agree with ground truth on every sampled stratum\n",
              half_or_better, limit, all_agree, limit);
  return 0;
}
