// Shared helpers for the table/figure benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "workloads/workloads.h"

namespace nvbitfi::bench {

inline double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

// The SDC / DUE / Masked percentage triple every outcome table prints,
// pre-formatted to the shared column width (insert with %s).
inline std::string OutcomePcts(double sdc, double due, double masked) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.1f %8.1f %8.1f", sdc, due, masked);
  return buf;
}

inline std::string OutcomePcts(const fi::OutcomeCounts& counts) {
  return OutcomePcts(counts.SdcPct(), counts.DuePct(), counts.MaskedPct());
}

// Number of transient injections per program per mode.  The paper uses 100
// and discusses the statistics (±8% error margins at 90% confidence); the
// default here keeps a full bench run fast.  Override with
// NVBITFI_BENCH_INJECTIONS=100 for paper-strength campaigns.
inline int InjectionsPerProgram(int fallback = 30) {
  if (const char* env = std::getenv("NVBITFI_BENCH_INJECTIONS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline std::uint64_t BenchSeed() {
  if (const char* env = std::getenv("NVBITFI_BENCH_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 2021;  // DSN'21
}

// Worker threads for the parallel campaign engine.  0 means "all hardware
// cores" (WorkerPool resolves it); override with NVBITFI_BENCH_WORKERS=N
// (N=1 forces the serial path).  Results are identical at any setting.
inline int Workers(int fallback = 0) {
  if (const char* env = std::getenv("NVBITFI_BENCH_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return fallback;
}

inline void PrintRule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace nvbitfi::bench
