// Shared helpers for the table/figure benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.h"
#include "workloads/workloads.h"

namespace nvbitfi::bench {

// Number of transient injections per program per mode.  The paper uses 100
// and discusses the statistics (±8% error margins at 90% confidence); the
// default here keeps a full bench run fast.  Override with
// NVBITFI_BENCH_INJECTIONS=100 for paper-strength campaigns.
inline int InjectionsPerProgram(int fallback = 30) {
  if (const char* env = std::getenv("NVBITFI_BENCH_INJECTIONS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline std::uint64_t BenchSeed() {
  if (const char* env = std::getenv("NVBITFI_BENCH_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 2021;  // DSN'21
}

// Worker threads for the parallel campaign engine.  0 means "all hardware
// cores" (WorkerPool resolves it); override with NVBITFI_BENCH_WORKERS=N
// (N=1 forces the serial path).  Results are identical at any setting.
inline int Workers(int fallback = 0) {
  if (const char* env = std::getenv("NVBITFI_BENCH_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return fallback;
}

inline void PrintRule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace nvbitfi::bench
