// Ablation (paper §IV-B): how faithful is the approximate profile?
//
// The approximate profiler assumes every instance of a static kernel executes
// the same instruction counts.  This bench quantifies the resulting site-
// population error per program: total dynamic-instruction error and the L1
// distance between the exact and approximate per-opcode populations — the
// quantity that biases site selection ("the similarity between approximate
// and exact profiling depends on the application").
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  std::printf("Ablation: approximate-profile fidelity vs exact profiles\n\n");
  std::printf("%-14s | %16s %16s | %10s | %10s\n", "Program", "exact instrs",
              "approx instrs", "total err", "L1 dist");
  bench::PrintRule(80);

  const sim::DeviceProps device;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const fi::ProgramProfile exact =
        runner.RunProfiler(fi::ProfilerTool::Mode::kExact, device, nullptr);
    const fi::ProgramProfile approx =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);

    const double exact_total = static_cast<double>(exact.TotalInstructions());
    const double approx_total = static_cast<double>(approx.TotalInstructions());

    // L1 distance between normalised per-opcode populations.
    double l1 = 0.0;
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      const double pe =
          static_cast<double>(exact.OpcodeTotal(static_cast<sim::Opcode>(op))) /
          exact_total;
      const double pa =
          static_cast<double>(approx.OpcodeTotal(static_cast<sim::Opcode>(op))) /
          (approx_total > 0 ? approx_total : 1);
      l1 += std::abs(pe - pa);
    }

    std::printf("%-14s | %16.0f %16.0f | %9.2f%% | %10.4f\n",
                entry.program->name().c_str(), exact_total, approx_total,
                100.0 * (approx_total - exact_total) / exact_total, l1);
    std::fflush(stdout);
  }
  std::printf("\n(a total error of 0%% and L1 of 0 means approximate profiling loses "
              "nothing; programs whose kernels vary per instance show drift)\n");
  return 0;
}
