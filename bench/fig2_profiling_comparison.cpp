// Figure 2 — "Comparison of exact and approximate profiling for transient
// faults".
//
// For every SpecACCEL proxy, runs two full transient-fault campaigns — one
// whose injection sites are drawn from an *exact* profile and one from an
// *approximate* profile (first instance of each static kernel only) — and
// prints the SDC / DUE / Masked breakdown for both, plus the aggregate means
// the paper reports (exact 32.5/4.2/63.3 vs approximate 37.9/4.5/57.6).
#include <cstdio>

#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const int injections = bench::InjectionsPerProgram();
  const std::uint64_t seed = bench::BenchSeed();
  std::printf("Figure 2: exact vs. approximate profiling, transient faults "
              "(%d injections/program/mode, seed %llu)\n\n",
              injections, static_cast<unsigned long long>(seed));
  std::printf("%-14s | %28s | %28s\n", "", "exact profiling", "approximate profiling");
  std::printf("%-14s | %8s %8s %8s | %8s %8s %8s\n", "Program", "SDC%", "DUE%",
              "Masked%", "SDC%", "DUE%", "Masked%");
  bench::PrintRule(78);

  fi::OutcomeCounts exact_total, approx_total;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);

    fi::TransientCampaignConfig config;
    config.seed = seed;
    config.num_injections = injections;

    config.profiling = fi::ProfilerTool::Mode::kExact;
    const fi::TransientCampaignResult exact = runner.RunTransientCampaign(config);
    exact_total += exact.counts;

    config.profiling = fi::ProfilerTool::Mode::kApproximate;
    config.seed = seed + 1;  // an independent experiment set, as in the paper
    const fi::TransientCampaignResult approx = runner.RunTransientCampaign(config);
    approx_total += approx.counts;

    std::printf("%-14s | %s | %s\n", entry.program->name().c_str(),
                bench::OutcomePcts(exact.counts).c_str(),
                bench::OutcomePcts(approx.counts).c_str());
    std::fflush(stdout);
  }

  bench::PrintRule(78);
  std::printf("%-14s | %s | %s\n", "aggregate", bench::OutcomePcts(exact_total).c_str(),
              bench::OutcomePcts(approx_total).c_str());
  std::printf("%-14s | %s | %s\n", "paper", bench::OutcomePcts(32.5, 4.2, 63.3).c_str(),
              bench::OutcomePcts(37.9, 4.5, 57.6).c_str());
  std::printf("\nPotential DUEs (counted as their SDC/Masked outcome, per the paper): "
              "exact %llu/%llu, approximate %llu/%llu\n",
              static_cast<unsigned long long>(exact_total.potential_due),
              static_cast<unsigned long long>(exact_total.total()),
              static_cast<unsigned long long>(approx_total.potential_due),
              static_cast<unsigned long long>(approx_total.total()));
  return 0;
}
