// Table III — "Permanent fault parameters".
//
// Prints the parameter domains (SM id, lane id, XOR bit mask, opcode id —
// with the Volta ISA's 171 opcodes) and, per program, the executed-opcode
// count a profile-guided permanent campaign sweeps (the paper reports 16-41
// executed opcodes across the suite).  Finishes with one demonstrated
// permanent injection showing SM/lane masking at work.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/permanent_injector.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const sim::DeviceProps device;
  std::printf("Table III: permanent fault parameters\n\n");
  std::printf("%-12s | %s\n", "SM id", "0..N-1 (this device: N = 8 SMs)");
  std::printf("%-12s | %s\n", "Lane id", "0..31 (hardware lanes per SM sub-partition)");
  std::printf("%-12s | %s\n", "Bit mask", "32-bit XOR mask applied to every destination");
  std::printf("%-12s | 0..%d (the Volta ISA contains %d opcodes)\n", "Opcode id",
              sim::kOpcodeCount - 1, sim::kOpcodeCount);

  std::printf("\nfirst/last opcode ids: 0=%s ... %d=%s\n",
              std::string(sim::OpcodeName(static_cast<sim::Opcode>(0))).c_str(),
              sim::kOpcodeCount - 1,
              std::string(sim::OpcodeName(static_cast<sim::Opcode>(sim::kOpcodeCount - 1)))
                  .c_str());

  std::printf("\nexecuted opcodes per program (a profile lets the campaign skip "
              "unused opcodes):\n\n");
  std::printf("%-14s | %8s | %s\n", "Program", "executed", "sample opcodes");
  bench::PrintRule(90);
  std::size_t min_executed = 1000, max_executed = 0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);
    const std::vector<sim::Opcode> executed = profile.ExecutedOpcodes();
    std::string sample;
    for (std::size_t i = 0; i < executed.size() && i < 8; ++i) {
      sample += std::string(sim::OpcodeName(executed[i])) + " ";
    }
    if (executed.size() > 8) sample += "...";
    std::printf("%-14s | %8zu | %s\n", entry.program->name().c_str(), executed.size(),
                sample.c_str());
    std::fflush(stdout);
    min_executed = std::min(min_executed, executed.size());
    max_executed = std::max(max_executed, executed.size());
  }
  bench::PrintRule(90);
  std::printf("range: %zu-%zu executed opcodes per program (paper: 16-41 out of %d)\n",
              min_executed, max_executed, sim::kOpcodeCount);

  // SM/lane masking demonstration: the same opcode fault pinned to different
  // SMs activates a different number of times (blocks are scheduled
  // round-robin over SMs).
  std::printf("\nSM/lane masking: FFMA fault, lane 0, swept over SM id on "
              "303.ostencil:\n\n  SM id:       ");
  const fi::TargetProgram* target = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*target);
  const fi::RunArtifacts golden = runner.RunGolden(device);
  std::printf("\n  activations: ");
  for (int sm = 0; sm < device.num_sms; ++sm) {
    fi::PermanentFaultParams params;
    params.opcode_id = static_cast<int>(sim::Opcode::kFFMA);
    params.sm_id = sm;
    params.lane_id = 0;
    params.bit_mask = 0x10;
    fi::PermanentInjectorTool injector(params);
    runner.Execute(&injector, device, 20 * golden.max_launch_thread_instructions);
    std::printf("%llu ", static_cast<unsigned long long>(injector.activations()));
  }
  std::printf("\n");
  return 0;
}
