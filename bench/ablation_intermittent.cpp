// Ablation (paper §V, "Intermittent faults"): sweeps the duty cycle of the
// intermittent fault model between the transient-like and permanent-like
// extremes on one program/opcode, showing how outcome severity grows with
// fault activity — the motivation the paper gives for the extension.
#include <cstdio>

#include "bench_util.h"
#include "core/permanent_injector.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const fi::TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*program);
  const sim::DeviceProps device;
  const fi::RunArtifacts golden = runner.RunGolden(device);
  const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;

  std::printf("Ablation: intermittent fault model (FFMA, SM 0, lane 3, bit 20) on "
              "303.ostencil\n\n");
  std::printf("%10s | %12s | %12s | %s\n", "duty", "activations", "eligible",
              "outcome");
  bench::PrintRule(60);

  const double duties[] = {0.001, 0.01, 0.05, 0.2, 0.5, 0.9, 0.99};
  for (const double duty : duties) {
    fi::IntermittentFaultParams params;
    params.base.opcode_id = static_cast<int>(sim::Opcode::kFFMA);
    params.base.sm_id = 0;
    params.base.lane_id = 3;
    params.base.bit_mask = 1u << 20;
    params.duty_cycle = duty;
    params.mean_burst_events = 16.0;
    params.seed = bench::BenchSeed();

    fi::IntermittentInjectorTool injector(params);
    const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
    const fi::Classification c = fi::Classify(golden, run, program->sdc_checker());
    std::printf("%10.3f | %12llu | %12llu | %s%s\n", duty,
                static_cast<unsigned long long>(injector.activations()),
                static_cast<unsigned long long>(injector.eligible_events()),
                std::string(fi::OutcomeName(c.outcome)).c_str(),
                c.potential_due ? " [potential DUE]" : "");
  }

  // Extremes for reference: a permanent fault at the same location.
  fi::PermanentFaultParams permanent;
  permanent.opcode_id = static_cast<int>(sim::Opcode::kFFMA);
  permanent.sm_id = 0;
  permanent.lane_id = 3;
  permanent.bit_mask = 1u << 20;
  fi::PermanentInjectorTool perm_tool(permanent);
  const fi::RunArtifacts perm_run = runner.Execute(&perm_tool, device, watchdog);
  const fi::Classification perm_c =
      fi::Classify(golden, perm_run, program->sdc_checker());
  std::printf("%10s | %12llu | %12s | %s   (permanent reference)\n", "1.0",
              static_cast<unsigned long long>(perm_tool.activations()), "-",
              std::string(fi::OutcomeName(perm_c.outcome)).c_str());
  return 0;
}
