// Ablation (paper §V, "More complex fault models" / "Fault dictionary"):
// compares outcome distributions of the base single-register XOR model
// against the implemented extensions on one program:
//   * register span 1 / 2 / 4 (multi-register corruption),
//   * warp-wide corruption,
//   * stuck-at-0 / stuck-at-1 corruption functions,
//   * dictionary-sampled opcode-conditioned patterns.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/extended_models.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

struct Variant {
  const char* label;
  int span = 1;
  bool warp_wide = false;
  fi::CorruptionFn fn = fi::CorruptionFn::kXorMask;
  bool dictionary = false;
};

}  // namespace

int main() {
  const fi::TargetProgram* program = workloads::FindWorkload("304.olbm");
  const fi::CampaignRunner runner(*program);
  const sim::DeviceProps device;
  const int injections = bench::InjectionsPerProgram(25);

  const fi::RunArtifacts golden = runner.RunGolden(device);
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);
  const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;
  const fi::FaultDictionary dictionary = fi::FaultDictionary::Synthetic(7);

  const Variant variants[] = {
      {"base (span 1, XOR)", 1, false, fi::CorruptionFn::kXorMask, false},
      {"span 2", 2, false, fi::CorruptionFn::kXorMask, false},
      {"span 4", 4, false, fi::CorruptionFn::kXorMask, false},
      {"warp-wide", 1, true, fi::CorruptionFn::kXorMask, false},
      {"stuck-at-0", 1, false, fi::CorruptionFn::kStuckAtZero, false},
      {"stuck-at-1", 1, false, fi::CorruptionFn::kStuckAtOne, false},
      {"fault dictionary", 1, false, fi::CorruptionFn::kXorMask, true},
  };

  std::printf("Ablation: extended fault models on 304.olbm (%d injections each)\n\n",
              injections);
  std::printf("%-22s | %8s %8s %8s | %s\n", "model", "SDC%", "DUE%", "Masked%",
              "corruptions/injection");
  bench::PrintRule(78);

  for (const Variant& variant : variants) {
    Rng rng(Rng::SeedFrom(bench::BenchSeed(), variant.label));
    fi::OutcomeCounts counts;
    std::uint64_t corruptions = 0;
    for (int i = 0; i < injections; ++i) {
      Rng experiment = rng.Fork();
      const auto site = fi::SelectTransientFault(
          profile, fi::ArchStateId::kGGp, fi::BitFlipModel::kFlipSingleBit, experiment);
      if (!site) continue;

      fi::RunArtifacts run;
      if (variant.dictionary) {
        fi::DictionaryInjectorTool tool(*site, dictionary, experiment.Bits32());
        run = runner.Execute(&tool, device, watchdog);
        corruptions += tool.record().corrupted ? 1 : 0;
      } else {
        fi::ExtendedTransientParams params;
        params.base = *site;
        params.register_span = variant.span;
        params.warp_wide = variant.warp_wide;
        params.corruption = variant.fn;
        fi::ExtendedInjectorTool tool(params);
        run = runner.Execute(&tool, device, watchdog);
        corruptions += tool.records().size();
      }
      counts.Add(fi::Classify(golden, run, program->sdc_checker()));
    }
    std::printf("%-22s | %s | %.2f\n", variant.label, bench::OutcomePcts(counts).c_str(),
                static_cast<double>(corruptions) /
                    static_cast<double>(counts.total() ? counts.total() : 1));
    std::fflush(stdout);
  }

  std::printf("\n(expected shape: wider spans and warp-wide faults mask less; "
              "stuck-at functions depend on the data's bit bias)\n");
  return 0;
}
