// Table IX — checkpoint/restore golden-prefix reuse across the workload
// suite.
//
// For every workload: campaign wall-clock with --checkpoints against the
// --no-checkpoints baseline on identical seeds, the launches and simulated
// thread-instructions that fast-forwarding skipped, and the fallbacks taken.
// The outcome columns must agree bit for bit — checkpointing restores
// recorded state instead of re-simulating it, so only wall-clock changes.
// The speedup scales with a program's launch count: a single-launch program
// has no golden prefix to skip, while a many-launch program replays almost
// its entire pre-fault timeline from memory snapshots.
#include <chrono>
#include <cstdio>

#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const int injections = bench::InjectionsPerProgram(30);
  const std::uint64_t seed = bench::BenchSeed();
  const int workers = bench::Workers(1);
  std::printf("Table IX: checkpointed golden-prefix replay (%d injections per "
              "program, seed %llu)\n\n",
              injections, static_cast<unsigned long long>(seed));
  std::printf("%-14s %8s %10s %12s %10s %10s %8s %6s\n", "program", "launches",
              "ff-launch", "instr-saved", "base(s)", "ckpt(s)", "speedup",
              "match");

  double total_base = 0.0, total_ckpt = 0.0;
  double best_speedup = 0.0;
  std::string best_program;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::TargetProgram& program = *entry.program;
    const fi::CampaignRunner runner(program);

    fi::TransientCampaignConfig config;
    config.seed = seed;
    config.num_injections = injections;
    config.num_workers = workers;
    config.checkpoints = false;

    const auto base_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult baseline = runner.RunTransientCampaign(config);
    const double base_seconds = Seconds(base_start);

    config.checkpoints = true;
    const auto ckpt_start = std::chrono::steady_clock::now();
    const fi::TransientCampaignResult ckpt = runner.RunTransientCampaign(config);
    const double ckpt_seconds = Seconds(ckpt_start);

    const bool match = ckpt.counts.masked == baseline.counts.masked &&
                       ckpt.counts.sdc == baseline.counts.sdc &&
                       ckpt.counts.due == baseline.counts.due &&
                       ckpt.counts.potential_due == baseline.counts.potential_due &&
                       ckpt.TotalInjectionCycles() == baseline.TotalInjectionCycles();
    const double speedup = ckpt_seconds > 0 ? base_seconds / ckpt_seconds : 0.0;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_program = program.name();
    }
    total_base += base_seconds;
    total_ckpt += ckpt_seconds;

    std::printf("%-14s %8llu %10llu %12llu %10.3f %10.3f %7.2fx %6s\n",
                program.name().c_str(),
                static_cast<unsigned long long>(ckpt.golden.dynamic_kernels),
                static_cast<unsigned long long>(ckpt.replay_launches),
                static_cast<unsigned long long>(ckpt.replay_instructions_saved),
                base_seconds, ckpt_seconds, speedup, match ? "yes" : "NO");
  }

  std::printf("\nsuite wall-clock: baseline %.3f s, checkpointed %.3f s (%.2fx)\n",
              total_base, total_ckpt,
              total_ckpt > 0 ? total_base / total_ckpt : 0.0);
  std::printf("best speedup: %.2fx on %s\n", best_speedup, best_program.c_str());
  return 0;
}
