// Ablation: fault-site pruning (Nie et al. [24], cited by the paper's
// statistics discussion) versus uniform site sampling.
//
// For each of a few programs, compares the weighted SDC/DUE/Masked estimate
// from a pruned campaign (one or a few representatives per (kernel instance,
// opcode) class) against a uniform-sampling campaign, reporting the estimate
// gap and the run-count savings.
#include <cstdio>

#include "bench_util.h"
#include "core/pruning.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const int uniform_runs = bench::InjectionsPerProgram(40);
  const char* kPrograms[] = {"303.ostencil", "304.olbm", "352.ep", "360.ilbdc"};

  std::printf("Ablation: fault-site pruning vs uniform sampling "
              "(uniform: %d runs/program)\n\n",
              uniform_runs);
  std::printf("%-14s | %5s | %8s %8s %8s | %5s | %8s %8s %8s | %s\n", "program", "runs",
              "SDC%", "DUE%", "Mask%", "runs", "SDC%", "DUE%", "Mask%", "gap(SDC)");
  std::printf("%-14s | %27s | %34s\n", "", "uniform sampling", "pruned (1 rep/class)");
  bench::PrintRule(104);

  for (const char* name : kPrograms) {
    const fi::TargetProgram* program = workloads::FindWorkload(name);
    const fi::CampaignRunner runner(*program);

    fi::TransientCampaignConfig uniform_config;
    uniform_config.seed = bench::BenchSeed();
    uniform_config.num_injections = uniform_runs;
    uniform_config.randomize_flip_model = false;  // same model in both arms
    const fi::TransientCampaignResult uniform =
        runner.RunTransientCampaign(uniform_config);

    const fi::ProgramProfile profile = uniform.profile;
    Rng rng(Rng::SeedFrom(bench::BenchSeed(), std::string(name) + "/pruned"));
    fi::PruningConfig pruning;
    const fi::PrunedCampaignResult pruned =
        fi::RunPrunedCampaign(runner, *program, profile, pruning, rng);

    const double t = pruned.weighted.total();
    const double pruned_sdc = t > 0 ? 100.0 * pruned.weighted.sdc / t : 0.0;
    const double pruned_due = t > 0 ? 100.0 * pruned.weighted.due / t : 0.0;
    const double pruned_masked = t > 0 ? 100.0 * pruned.weighted.masked / t : 0.0;

    std::printf("%-14s | %5d | %8.1f %8.1f %8.1f | %5llu | %8.1f %8.1f %8.1f | %+6.1f\n",
                name, uniform_runs, uniform.counts.SdcPct(), uniform.counts.DuePct(),
                uniform.counts.MaskedPct(),
                static_cast<unsigned long long>(pruned.total_runs), pruned_sdc,
                pruned_due, pruned_masked, pruned_sdc - uniform.counts.SdcPct());
    std::fflush(stdout);
  }

  std::printf("\n(the pruned campaign estimates the same distribution from far fewer "
              "runs when classes behave homogeneously; class-heterogeneous programs "
              "show larger gaps)\n");
  return 0;
}
