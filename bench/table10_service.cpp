// Table X — sharded fleet execution vs in-process parallelism.
//
// For every workload, the same transient campaign three ways: serial in one
// process, parallel with the in-process worker pool (--workers), and split
// into index-range shards each executed as an independent shard job on its
// own thread — the coordinator's dispatch unit, minus the socket hop.  All
// three modes share one RunCache, as the service's tenants share the golden
// and checkpoint pool, so the timings isolate the injection phase itself.
// The outcome columns must agree exactly: sharding is bit-identical by
// construction (pre-forked per-index RNG streams), so wall-clock is the only
// thing allowed to move.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/shard_runner.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

fi::OutcomeCounts RunMode(const fi::CampaignSpec& spec, std::size_t begin,
                          std::size_t end, int workers, fi::RunCache* cache) {
  service::ShardJob job;
  job.spec = spec;
  job.begin = begin;
  job.end = end;
  job.workers = workers;
  const service::ShardOutcome outcome = service::RunShardJob(job, cache);
  if (!outcome.ok) {
    std::fprintf(stderr, "%s: shard [%zu, %zu) failed: %s\n",
                 spec.program.c_str(), begin, end, outcome.error.c_str());
    std::exit(1);
  }
  return outcome.result.counts;
}

bool SameCounts(const fi::OutcomeCounts& a, const fi::OutcomeCounts& b) {
  return a.masked == b.masked && a.sdc == b.sdc && a.due == b.due &&
         a.potential_due == b.potential_due;
}

}  // namespace

int main() {
  const int injections = bench::InjectionsPerProgram(30);
  const std::uint64_t seed = bench::BenchSeed();
  const int workers = bench::Workers(4);
  const std::size_t shards = static_cast<std::size_t>(workers);
  std::printf("Table X: sharded fleet execution vs in-process parallelism "
              "(%d injections per program, seed %llu, %d workers / %zu shards)\n\n",
              injections, static_cast<unsigned long long>(seed), workers, shards);
  std::printf("%-14s %10s %10s %10s %9s %9s %6s\n", "program", "serial(s)",
              "inproc(s)", "sharded(s)", "inproc-x", "shard-x", "match");

  fi::RunCache cache;
  double total_serial = 0.0, total_inproc = 0.0, total_sharded = 0.0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    fi::CampaignSpec spec;
    spec.program = entry.program->name();
    spec.seed = seed;
    spec.num_injections = injections;

    // Warm the shared golden/checkpoint/profile pool outside the timers —
    // every mode (and every service tenant) draws from the same cache.
    RunMode(spec, 0, 1, 1, &cache);

    const auto serial_start = std::chrono::steady_clock::now();
    const fi::OutcomeCounts serial = RunMode(spec, 0, 0, 1, &cache);
    const double serial_seconds = Seconds(serial_start);

    const auto inproc_start = std::chrono::steady_clock::now();
    const fi::OutcomeCounts inproc = RunMode(spec, 0, 0, workers, &cache);
    const double inproc_seconds = Seconds(inproc_start);

    const std::vector<fi::ShardRange> plan =
        fi::PlanShards(static_cast<std::size_t>(injections), shards);
    std::vector<fi::OutcomeCounts> shard_counts(plan.size());
    const auto sharded_start = std::chrono::steady_clock::now();
    std::vector<std::thread> fleet;
    fleet.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      fleet.emplace_back([&, i] {
        shard_counts[i] = RunMode(spec, plan[i].begin, plan[i].end, 1, &cache);
      });
    }
    for (std::thread& t : fleet) t.join();
    const double sharded_seconds = Seconds(sharded_start);

    fi::OutcomeCounts sharded;
    for (const fi::OutcomeCounts& counts : shard_counts) {
      sharded.masked += counts.masked;
      sharded.sdc += counts.sdc;
      sharded.due += counts.due;
      sharded.potential_due += counts.potential_due;
    }
    const bool match = SameCounts(serial, inproc) && SameCounts(serial, sharded);

    total_serial += serial_seconds;
    total_inproc += inproc_seconds;
    total_sharded += sharded_seconds;
    std::printf("%-14s %10.3f %10.3f %10.3f %8.2fx %8.2fx %6s\n",
                spec.program.c_str(), serial_seconds, inproc_seconds,
                sharded_seconds,
                inproc_seconds > 0 ? serial_seconds / inproc_seconds : 0.0,
                sharded_seconds > 0 ? serial_seconds / sharded_seconds : 0.0,
                match ? "yes" : "NO");
  }

  std::printf("\nsuite wall-clock: serial %.3f s, in-process %.3f s (%.2fx), "
              "sharded %.3f s (%.2fx)\n",
              total_serial, total_inproc,
              total_inproc > 0 ? total_serial / total_inproc : 0.0,
              total_sharded,
              total_sharded > 0 ? total_serial / total_sharded : 0.0);
  return 0;
}
