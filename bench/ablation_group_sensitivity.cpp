// Ablation: outcome sensitivity per instruction group (Table II arch state
// ids).
//
// The paper motivates the groups with ECC deployment: on ECC-protected parts
// the surviving vulnerability is the unprotected compute pipeline, so users
// pick the instruction subset that matches their protection profile.  This
// bench measures how the outcome distribution shifts with the targeted group
// on two contrasting programs (FP-heavy 314.omriq vs memory/control-heavy
// 359.miniGhost).
#include <cstdio>

#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const int injections = bench::InjectionsPerProgram(25);
  const char* kPrograms[] = {"314.omriq", "359.miniGhost"};

  std::printf("Ablation: outcome sensitivity by arch state id "
              "(%d injections per group)\n",
              injections);
  for (const char* name : kPrograms) {
    const fi::TargetProgram* program = workloads::FindWorkload(name);
    const fi::CampaignRunner runner(*program);

    std::printf("\n%s:\n", name);
    std::printf("%3s %-10s | %10s | %8s %8s %8s | %s\n", "id", "group", "population",
                "SDC%", "DUE%", "Masked%", "potDUE%");
    bench::PrintRule(76);

    for (int id = 1; id <= 8; ++id) {
      const fi::ArchStateId group = *fi::ArchStateIdFromInt(id);
      fi::TransientCampaignConfig config;
      config.seed = bench::BenchSeed() + static_cast<std::uint64_t>(id);
      config.num_injections = injections;
      config.group = group;
      config.profiling = fi::ProfilerTool::Mode::kApproximate;
      const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

      std::printf("%3d %-10s | %10llu | %s | %6.1f\n", id,
                  std::string(fi::ArchStateIdName(group)).c_str(),
                  static_cast<unsigned long long>(result.profile.GroupTotal(group)),
                  bench::OutcomePcts(result.counts).c_str(),
                  bench::Pct(result.counts.potential_due, result.counts.total()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(G_PR and G_NODEST faults mask most often — predicates and stores "
              "have narrow live ranges; G_LD faults model what ECC on the memory "
              "path would have caught)\n");
  return 0;
}
