// Figure 4 — "Execution overheads".
//
// Per program, relative to the uninstrumented golden run (simulated cycles):
//   * exact profiling overhead (every dynamic kernel instrumented),
//   * approximate profiling overhead (first instance per static kernel),
//   * median transient-injection overhead (selective instrumentation of one
//     dynamic kernel instance),
//   * median permanent-injection overhead (one opcode instrumented in every
//     launch).
//
// Injection samples are independent runs, so they execute on a WorkerPool
// (NVBITFI_BENCH_WORKERS, default all cores); Rng streams are pre-forked in
// serial order, so the sampled overheads are identical at any worker count.
//
// Paper reference points: exact profiling is on average 28x approximate and
// reaches 558x on 350.md (register spills); transient injection averages
// ~2.9x; permanent injection ~4.8x.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/parallel.h"
#include "core/statistics.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const std::uint64_t seed = bench::BenchSeed();
  const int samples = std::min(bench::InjectionsPerProgram(12), 25);
  fi::WorkerPool pool(bench::Workers());
  std::printf("Figure 4: execution overheads relative to uninstrumented runs "
              "(%d injection samples/program, seed %llu, %d workers)\n\n",
              samples, static_cast<unsigned long long>(seed), pool.workers());
  std::printf("%-14s | %12s %12s %14s %14s\n", "Program", "prof-exact", "prof-approx",
              "inj-transient", "inj-permanent");
  bench::PrintRule(74);

  double sum_exact = 0, sum_approx = 0, sum_trans = 0, sum_perm = 0;
  double sum_ratio = 0;
  double max_exact = 0;
  std::string max_exact_program;
  int count = 0;

  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const double golden_cycles = static_cast<double>(golden.cycles);
    const std::uint64_t watchdog =
        20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

    fi::RunArtifacts exact_run, approx_run;
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kExact, device, &exact_run);
    runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, &approx_run);

    // Pre-fork every sample's stream in the serial order (transient samples
    // first, then permanent), then fan the runs out over the pool.
    Rng rng(Rng::SeedFrom(seed, entry.program->name() + "/fig4"));
    std::vector<Rng> transient_streams, permanent_streams;
    for (int i = 0; i < samples; ++i) transient_streams.push_back(rng.Fork());
    const std::vector<sim::Opcode> executed = profile.ExecutedOpcodes();
    for (int i = 0; i < samples && !executed.empty(); ++i) {
      permanent_streams.push_back(rng.Fork());
    }

    std::vector<double> transient(transient_streams.size(), -1.0);
    pool.ParallelFor(transient_streams.size(), [&](std::size_t i) {
      Rng& experiment = transient_streams[i];
      const auto params = fi::SelectTransientFault(
          profile, fi::ArchStateId::kGGp, fi::BitFlipModel::kFlipSingleBit, experiment);
      if (!params) return;
      fi::TransientInjectorTool injector(*params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      transient[i] = static_cast<double>(run.cycles) / golden_cycles;
    });

    std::vector<double> permanent(permanent_streams.size(), -1.0);
    pool.ParallelFor(permanent_streams.size(), [&](std::size_t i) {
      Rng& experiment = permanent_streams[i];
      fi::PermanentFaultParams params;
      params.opcode_id = static_cast<int>(
          executed[experiment.UniformInt(0, executed.size() - 1)]);
      params.sm_id = 0;
      params.lane_id = static_cast<int>(experiment.UniformInt(0, sim::kWarpSize - 1));
      params.bit_mask = 1u << experiment.UniformInt(0, 31);
      fi::PermanentInjectorTool injector(params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      permanent[i] = static_cast<double>(run.cycles) / golden_cycles;
    });

    std::erase_if(transient, [](double v) { return v < 0.0; });
    std::erase_if(permanent, [](double v) { return v < 0.0; });

    const double exact_oh = static_cast<double>(exact_run.cycles) / golden_cycles;
    const double approx_oh = static_cast<double>(approx_run.cycles) / golden_cycles;
    const double trans_oh = fi::Median(std::move(transient));
    const double perm_oh = fi::Median(std::move(permanent));
    std::printf("%-14s | %11.1fx %11.1fx %13.2fx %13.2fx\n",
                entry.program->name().c_str(), exact_oh, approx_oh, trans_oh, perm_oh);
    std::fflush(stdout);

    sum_exact += exact_oh;
    sum_approx += approx_oh;
    sum_trans += trans_oh;
    sum_perm += perm_oh;
    sum_ratio += approx_oh > 0 ? exact_oh / approx_oh : 0.0;
    if (exact_oh > max_exact) {
      max_exact = exact_oh;
      max_exact_program = entry.program->name();
    }
    ++count;
  }

  bench::PrintRule(74);
  std::printf("%-14s | %11.1fx %11.1fx %13.2fx %13.2fx\n", "mean",
              sum_exact / count, sum_approx / count, sum_trans / count,
              sum_perm / count);
  std::printf("\nexact profiling costs %.1fx approximate on average "
              "(mean of per-program ratios; paper: 28x)\n",
              sum_ratio / count);
  std::printf("worst exact profiling: %.0fx on %s   (paper: 558x on 350.md)\n",
              max_exact, max_exact_program.c_str());
  std::printf("transient injection mean: %.2fx (paper: ~2.9x); permanent mean: "
              "%.2fx (paper: ~4.8x)\n",
              sum_trans / count, sum_perm / count);
  return 0;
}
