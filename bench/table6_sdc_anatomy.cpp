// Table VI (extension) — SDC anatomy across the workload suite.
//
// Runs a transient campaign per workload and reduces every SDC to its
// corruption shape: pattern class (single-bit / byte / word / multi-word),
// flipped-bit-position concentration, relative-magnitude distribution, and
// spatial extent — the error-model inputs "The Anatomy of Silent Data
// Corruption" (PAPERS.md) mines from production fleets, here measured under
// a controlled fault model instead.  Prints one summary row per workload
// plus the full campaign-wide anatomy report for the last one.
#include <cstdio>
#include <string>

#include "analysis/anatomy.h"
#include "bench_util.h"

using namespace nvbitfi;  // NOLINT: bench brevity
using bench::Pct;

int main() {
  const int injections = bench::InjectionsPerProgram();
  std::printf("Table VI: SDC anatomy per workload (%d transient injections "
              "each, seed %llu)\n\n",
              injections, static_cast<unsigned long long>(bench::BenchSeed()));
  std::printf("%-14s %6s %6s | %11s %10s %10s %11s | %10s %10s\n", "program",
              "SDCs", "runs", "single-bit", "byte", "word", "multi-word",
              "clustered", "non-finite");
  bench::PrintRule(108);

  analysis::AnatomyBreakdown last;
  std::string last_name;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    fi::TransientCampaignConfig config;
    config.seed = bench::BenchSeed();
    config.num_injections = injections;
    config.profiling = fi::ProfilerTool::Mode::kApproximate;
    config.num_workers = bench::Workers();
    const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

    const analysis::AnatomyBreakdown breakdown =
        analysis::BuildTransientAnatomy(result);
    const analysis::AnatomyAggregate& c = breakdown.campaign;
    std::uint64_t sampled = 0;  // magnitude buckets count sampled elements
    for (const std::uint64_t n : c.magnitude) sampled += n;
    const auto pattern = [&](analysis::SdcPattern p) {
      return Pct(c.patterns[static_cast<int>(p)], c.sdc_runs);
    };
    std::printf("%-14s %6llu %6llu | %10.1f%% %9.1f%% %9.1f%% %10.1f%% | "
                "%9.1f%% %9.1f%%\n",
                result.program.c_str(),
                static_cast<unsigned long long>(c.sdc_runs),
                static_cast<unsigned long long>(breakdown.total_runs),
                pattern(analysis::SdcPattern::kSingleBit),
                pattern(analysis::SdcPattern::kMultiBitByte),
                pattern(analysis::SdcPattern::kMultiBitWord),
                pattern(analysis::SdcPattern::kMultiWord),
                Pct(c.extents[static_cast<int>(analysis::SpatialExtent::kClustered)],
                    c.sdc_runs),
                Pct(c.magnitude[analysis::kMagnitudeBucketCount - 1], sampled));
    last = breakdown;
    last_name = result.program;
  }

  std::printf("\nFull anatomy report for %s:\n\n%s", last_name.c_str(),
              analysis::AnatomyReportText(last).c_str());
  return 0;
}
