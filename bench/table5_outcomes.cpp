// Table V — "Possible Error Propagation Outcomes".
//
// Demonstrates every outcome/symptom row of the taxonomy by searching seeded
// injection experiments until a concrete fault exhibiting each symptom is
// found, then printing the fault that produced it:
//   SDC    — standard output different / output file different /
//            application-specific check failed,
//   DUE    — timeout (monitor), process crash (OS), non-zero exit (application),
//   Masked — no difference detected,
//   Potential DUE — (SDC or Masked) with an unchecked CUDA error or a
//            device-log ("dmesg") entry.
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/rng.h"

using namespace nvbitfi;  // NOLINT: bench brevity

namespace {

struct Demo {
  bool found = false;
  fi::TransientFaultParams params;
  std::string program;
  fi::Classification classification;
};

}  // namespace

int main() {
  std::printf("Table V: possible error propagation outcomes — one demonstrated "
              "fault per symptom\n\n");

  // Programs chosen so that every symptom is reachable: 352.ep has the
  // host-crash and app-check hooks, 350.md can hang (linked-list walk),
  // 356.sp checks CUDA errors (non-zero exit), 303.ostencil is lenient.
  const char* kPrograms[] = {"303.ostencil", "352.ep", "350.md", "356.sp"};

  std::map<std::string, Demo> demos;  // key: outcome/symptom label
  const auto label = [](const fi::Classification& c) {
    std::string key = std::string(fi::OutcomeName(c.outcome)) + " — " +
                      std::string(fi::SymptomName(c.symptom));
    return key;
  };

  int potential_due_examples = 0;
  for (const char* name : kPrograms) {
    const fi::TargetProgram* program = workloads::FindWorkload(name);
    const fi::CampaignRunner runner(*program);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);
    const std::uint64_t watchdog =
        20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

    Rng rng(Rng::SeedFrom(bench::BenchSeed(), std::string("table5/") + name));
    for (int attempt = 0; attempt < 120; ++attempt) {
      Rng experiment = rng.Fork();
      const auto model = *fi::BitFlipModelFromInt(
          static_cast<int>(experiment.UniformInt(1, 4)));
      const auto params =
          fi::SelectTransientFault(profile, fi::ArchStateId::kGGp, model, experiment);
      if (!params) break;
      fi::TransientInjectorTool injector(*params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      const fi::Classification c = fi::Classify(golden, run, program->sdc_checker());

      Demo& demo = demos[label(c)];
      if (!demo.found) {
        demo.found = true;
        demo.params = *params;
        demo.program = name;
        demo.classification = c;
      }
      if (c.potential_due) ++potential_due_examples;
    }
  }

  // Targeted searches for the rare DUE rows the uniform sampling misses.
  //
  // Timeout: corrupting the counter of md_neighbor's !=-terminated polish
  // loop makes it skip the equality exit and spin until the watchdog fires
  // (monitor detection).  Walk the eligible-instruction index across the
  // kernel (the counter advances one per lane event, so stride by an odd
  // lane count to cross instructions).
  {
    const fi::TargetProgram* md = workloads::FindWorkload("350.md");
    const fi::CampaignRunner runner(*md);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);
    const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;
    std::uint64_t neighbor_total = 0;
    for (const fi::KernelProfile& k : profile.kernels) {
      if (k.kernel_name == "md_neighbor" && k.kernel_count == 0) {
        neighbor_total = k.GroupTotal(fi::ArchStateId::kGGp);
      }
    }
    for (int attempt = 0; attempt < 128 && neighbor_total > 0; ++attempt) {
      fi::TransientFaultParams params;
      params.arch_state_id = fi::ArchStateId::kGGp;
      params.bit_flip_model = fi::BitFlipModel::kFlipSingleBit;
      params.kernel_name = "md_neighbor";
      params.kernel_count = 0;
      params.instruction_count = (33 * attempt) % neighbor_total;
      params.destination_register = 0.0;
      params.bit_pattern_value = 0.8;  // bit 25: counter leaps past the exit value
      fi::TransientInjectorTool injector(params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      const fi::Classification c = fi::Classify(golden, run, md->sdc_checker());
      if (c.symptom == fi::Symptom::kTimeout) {
        Demo& demo = demos[label(c)];
        demo.found = true;
        demo.params = params;
        demo.program = "350.md";
        demo.classification = c;
        break;
      }
    }
  }

  // Crash: corrupt the device-computed histogram argmax that 352.ep's host
  // uses as an index into a local array (OS detection).
  {
    const fi::TargetProgram* ep = workloads::FindWorkload("352.ep");
    const fi::CampaignRunner runner(*ep);
    const sim::DeviceProps device;
    const fi::RunArtifacts golden = runner.RunGolden(device);
    const fi::ProgramProfile profile =
        runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, device, nullptr);
    const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;
    std::uint64_t maxbin_total = 0;
    std::uint64_t last_instance = 0;
    for (const fi::KernelProfile& k : profile.kernels) {
      if (k.kernel_name == "ep_maxbin") {
        maxbin_total = k.GroupTotal(fi::ArchStateId::kGGp);
        last_instance = k.kernel_count;
      }
    }
    for (std::uint64_t index = 0; index < maxbin_total; ++index) {
      fi::TransientFaultParams params;
      params.arch_state_id = fi::ArchStateId::kGGp;
      params.bit_flip_model = fi::BitFlipModel::kFlipSingleBit;
      params.kernel_name = "ep_maxbin";
      params.kernel_count = last_instance;
      params.instruction_count = index;
      params.destination_register = 0.0;
      params.bit_pattern_value = 4.2 / 32.0;  // bit 4: argmax jumps past 9
      fi::TransientInjectorTool injector(params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      const fi::Classification c = fi::Classify(golden, run, ep->sdc_checker());
      if (c.symptom == fi::Symptom::kCrash) {
        Demo& demo = demos[label(c)];
        demo.found = true;
        demo.params = params;
        demo.program = "352.ep";
        demo.classification = c;
        break;
      }
    }
  }

  std::printf("%-58s | %-14s | %s\n", "Outcome — Symptom", "Program",
              "Fault (kernel@instance/instruction)");
  bench::PrintRule(118);
  for (const auto& [key, demo] : demos) {
    std::printf("%-58s | %-14s | %s@%llu/%llu%s\n", key.c_str(), demo.program.c_str(),
                demo.params.kernel_name.c_str(),
                static_cast<unsigned long long>(demo.params.kernel_count),
                static_cast<unsigned long long>(demo.params.instruction_count),
                demo.classification.potential_due ? "  [potential DUE]" : "");
  }
  std::printf("\npotential-DUE runs observed across the search: %d\n",
              potential_due_examples);
  std::printf("(potential DUEs are counted as their underlying SDC/Masked outcome, "
              "as in the paper)\n");
  return 0;
}
