// Table VII (extension) — fault-propagation anatomy across the workload
// suite.
//
// Runs a *traced* transient campaign per workload: every injection run
// carries the trace library's TaintTracker (src/trace/), which marks the
// corrupted destination register and follows the taint through the dataflow
// until it dies (overwrite / absorbing op) or escapes into program output.
// Prints one summary row per workload — how many faults provably masked, how
// many died before ever reaching a store, how many escaped — plus the full
// propagation report (masking-distance histogram per Table II group,
// per-kernel escape rates) for the last one.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/propagation.h"
#include "bench_util.h"
#include "trace/taint_tracker.h"

using namespace nvbitfi;  // NOLINT: bench brevity
using bench::Pct;

int main() {
  const int injections = bench::InjectionsPerProgram(20);
  std::printf("Table VII: fault propagation per workload (%d traced transient "
              "injections each, seed %llu)\n\n",
              injections, static_cast<unsigned long long>(bench::BenchSeed()));
  std::printf("%-14s %6s %6s | %9s %11s %8s | %10s %9s | %9s\n", "program",
              "traced", "inject", "masked%", "dead<store%", "escape%", "overwrites",
              "absorbed", "live-exit");
  bench::PrintRule(100);

  analysis::PropagationBreakdown last;
  std::string last_name;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    fi::TransientCampaignConfig config;
    config.seed = bench::BenchSeed();
    config.num_injections = injections;
    config.profiling = fi::ProfilerTool::Mode::kApproximate;
    config.num_workers = bench::Workers();
    config.trace = true;
    config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
      return std::make_unique<trace::TaintTracker>(params);
    };
    const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

    const analysis::PropagationBreakdown breakdown =
        analysis::BuildTransientPropagation(result);
    const analysis::PropagationAggregate& c = breakdown.campaign;
    std::printf("%-14s %6llu %6llu | %8.1f%% %10.1f%% %7.1f%% | %10llu %9llu | %9llu\n",
                result.program.c_str(),
                static_cast<unsigned long long>(c.traced_runs),
                static_cast<unsigned long long>(c.injected),
                Pct(c.fully_masked, c.traced_runs), Pct(c.dead_before_store, c.traced_runs),
                Pct(c.escaped, c.traced_runs),
                static_cast<unsigned long long>(c.overwrite_masks),
                static_cast<unsigned long long>(c.absorb_masks),
                static_cast<unsigned long long>(c.live_exit));
    std::fflush(stdout);
    if (breakdown.consistency_violations != 0) {
      std::printf("  ^ WARNING: %llu taint-vs-outcome consistency violations\n",
                  static_cast<unsigned long long>(breakdown.consistency_violations));
    }
    last = breakdown;
    last_name = result.program;
  }

  std::printf("\nFull propagation report for %s:\n\n%s", last_name.c_str(),
              analysis::PropagationReportText(last).c_str());
  return 0;
}
