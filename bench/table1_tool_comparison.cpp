// Table I — "Physical-GPU fault injection tools".
//
// Prints the qualitative capability matrix from the paper, then backs the
// mechanism comparison with *measurements*: the same transient fault is
// injected into 303.ostencil by three injector implementations —
//   * NVBitFI (dynamic, selective instrumentation: only the target dynamic
//     kernel instance pays),
//   * a SASSIFI-style static injector (instrumentation compiled into every
//     kernel, active on every launch),
//   * a GPU-Qin / cuda-gdb-style debugger injector (single-steps every
//     dynamic instruction) —
// and the injected-run overheads are reported side by side.  All three must
// observe the identical fault (same register, same mask) so the comparison
// isolates the injection mechanism.
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/rng.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  std::printf("Table I: physical-GPU fault injection tools\n\n");
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "Year", "Tool", "Mechanism",
              "Fault model level", "Needs source code?", "Inject libraries?");
  bench::PrintRule(100);
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "2020", "NVBitFI", "NVBit (DBI)",
              "SASS", "No", "Yes");
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "2017", "SASSIFI", "SASSI (compiler)",
              "SASS", "Yes", "No");
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "2016", "LLFI-GPU", "LLVM",
              "LLVM IR", "Yes", "No");
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "2014", "GPU-Qin", "cuda-gdb",
              "SASS", "No", "Maybe");
  std::printf("%-5s %-13s %-22s %-18s %-19s %-17s\n", "2011", "Hauberk", "source code",
              "C++", "Yes", "No");

  // Measured mechanism comparison on one identical fault.
  const fi::TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*program);
  const sim::DeviceProps device;
  const fi::RunArtifacts golden = runner.RunGolden(device);
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kExact, device, nullptr);
  const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;

  Rng rng(Rng::SeedFrom(bench::BenchSeed(), "table1"));
  const auto params = fi::SelectTransientFault(profile, fi::ArchStateId::kGGp,
                                               fi::BitFlipModel::kFlipSingleBit, rng);
  if (!params) {
    std::printf("no injection site found\n");
    return 1;
  }

  std::printf("\nMeasured: identical fault (<%s, %llu, %llu>) on 303.ostencil via "
              "each mechanism\n\n",
              params->kernel_name.c_str(),
              static_cast<unsigned long long>(params->kernel_count),
              static_cast<unsigned long long>(params->instruction_count));
  std::printf("%-24s | %10s | %10s | %s\n", "Mechanism", "overhead", "activated",
              "corrupted register");
  bench::PrintRule(72);

  const auto report = [&](const char* mechanism, const fi::RunArtifacts& run,
                          const fi::InjectionRecord& record) {
    std::printf("%-24s | %9.2fx | %10s | R%d ^ 0x%llx\n", mechanism,
                static_cast<double>(run.cycles) / static_cast<double>(golden.cycles),
                record.activated ? "yes" : "NO", record.target_register,
                static_cast<unsigned long long>(record.mask));
  };

  {
    fi::TransientInjectorTool tool(*params);
    const fi::RunArtifacts run = runner.Execute(&tool, device, watchdog);
    report("NVBitFI (dynamic DBI)", run, tool.record());
  }
  {
    baselines::StaticInjectorTool tool(*params);
    const fi::RunArtifacts run = runner.Execute(&tool, device, watchdog);
    report("SASSIFI-style (static)", run, tool.record());
  }
  {
    baselines::DebuggerInjectorTool tool(*params);
    const fi::RunArtifacts run = runner.Execute(&tool, device, watchdog);
    report("GPU-Qin-style (debugger)", run, tool.record());
    std::printf("\n(debugger single-stepped %llu dynamic instruction events)\n",
                static_cast<unsigned long long>(tool.single_steps()));
  }
  return 0;
}
