// Table II — "Transient fault parameters".
//
// Demonstrates every parameter of the transient fault model:
//   * the eight arch-state-id instruction groups, with their static opcode
//     populations and their dynamic-instruction populations on a real profile
//     (352.ep, which touches FP32, integer, memory, predicate, and atomic
//     instructions);
//   * the four bit-flip models, with worked mask examples per Table II's
//     formulas;
//   * one end-to-end injection per (group, model) pair on 303.ostencil, with
//     the resulting outcome.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  std::printf("Table II: transient fault parameters\n");

  // --- arch state ids -------------------------------------------------------
  const fi::TargetProgram* ep = workloads::FindWorkload("352.ep");
  const fi::CampaignRunner ep_runner(*ep);
  const fi::ProgramProfile ep_profile =
      ep_runner.RunProfiler(fi::ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);

  std::printf("\narch state id: instruction subset to inject "
              "(populations measured on 352.ep)\n\n");
  std::printf("%3s %-10s | %14s | %20s | %8s\n", "id", "group", "static opcodes",
              "dynamic instructions", "share");
  bench::PrintRule(70);
  for (int id = 1; id <= 8; ++id) {
    const fi::ArchStateId group = *fi::ArchStateIdFromInt(id);
    int static_opcodes = 0;
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      if (fi::OpcodeInGroup(static_cast<sim::Opcode>(op), group)) ++static_opcodes;
    }
    const std::uint64_t dynamic = ep_profile.GroupTotal(group);
    std::printf("%3d %-10s | %14d | %20llu | %7.1f%%\n", id,
                std::string(fi::ArchStateIdName(group)).c_str(), static_opcodes,
                static_cast<unsigned long long>(dynamic),
                100.0 * static_cast<double>(dynamic) /
                    static_cast<double>(ep_profile.TotalInstructions()));
  }

  // --- bit-flip models ------------------------------------------------------
  std::printf("\nbit-flip model: mask derived from the bit-pattern value "
              "(examples on original register value 0x40490FDB):\n\n");
  std::printf("%3s %-16s | %12s | %12s | %12s\n", "id", "model", "value=0.1",
              "value=0.5", "value=0.9");
  bench::PrintRule(70);
  const std::uint32_t original = 0x40490FDBu;  // 3.14159f
  for (int id = 1; id <= 4; ++id) {
    const fi::BitFlipModel model = *fi::BitFlipModelFromInt(id);
    std::printf("%3d %-16s | 0x%010x | 0x%010x | 0x%010x\n", id,
                std::string(fi::BitFlipModelName(model)).c_str(),
                fi::InjectionMask32(model, 0.1, original),
                fi::InjectionMask32(model, 0.5, original),
                fi::InjectionMask32(model, 0.9, original));
  }

  // --- one injection per (group, model) pair --------------------------------
  const fi::TargetProgram* target = workloads::FindWorkload("303.ostencil");
  const fi::CampaignRunner runner(*target);
  const sim::DeviceProps device;
  const fi::RunArtifacts golden = runner.RunGolden(device);
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kExact, device, nullptr);
  const std::uint64_t watchdog = 20 * golden.max_launch_thread_instructions;

  std::printf("\nend-to-end: one injection per (arch state id, bit-flip model) on "
              "303.ostencil\n\n");
  std::printf("%-10s | %-17s %-17s %-17s %-17s\n", "group", "FLIP_SINGLE_BIT",
              "FLIP_TWO_BITS", "RANDOM_VALUE", "ZERO_VALUE");
  bench::PrintRule(84);
  Rng rng(Rng::SeedFrom(bench::BenchSeed(), "table2"));
  for (int gid = 1; gid <= 8; ++gid) {
    const fi::ArchStateId group = *fi::ArchStateIdFromInt(gid);
    std::printf("%-10s |", std::string(fi::ArchStateIdName(group)).c_str());
    for (int mid = 1; mid <= 4; ++mid) {
      Rng experiment = rng.Fork();
      const auto params = fi::SelectTransientFault(
          profile, group, *fi::BitFlipModelFromInt(mid), experiment);
      if (!params) {
        std::printf(" %-17s", "(empty group)");
        continue;
      }
      fi::TransientInjectorTool injector(*params);
      const fi::RunArtifacts run = runner.Execute(&injector, device, watchdog);
      const fi::Classification c = fi::Classify(golden, run, target->sdc_checker());
      std::printf(" %-17s", std::string(fi::OutcomeName(c.outcome)).c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nspecific-target parameters: kernel name, kernel count, instruction "
              "count, destination register [0,1), bit-pattern value [0,1)\n");
  std::printf("(serialised parameter-file format exercised by the tests)\n");
  return 0;
}
