// Table XIII — bit-granular liveness pruning over the register-level oracle.
//
// For every workload: the full draw pool is previewed (exactly the draws the
// campaign will make) and each draw is judged three ways — register-dead (the
// PR 5 oracle), all-bits-dead (the bit lattice proves the whole register
// dead even though register liveness keeps it live), and flip-dead (the
// drawn flip mask touches only dead bits of a live register).  A
// --static-prune campaign consumes the union; the table shows the increment
// the bit lattice buys and re-checks the soundness contract: the pruned
// campaign's outcome distribution must match the unpruned baseline bit for
// bit on identical seeds.
#include <cstdio>

#include "bench_util.h"
#include "staticanalysis/static_site.h"

using namespace nvbitfi;  // NOLINT: bench brevity

int main() {
  const int injections = bench::InjectionsPerProgram(80);
  std::printf("Table XIII: bit-granular liveness pruning "
              "(%d-injection pools, seed %llu)\n\n",
              injections, static_cast<unsigned long long>(bench::BenchSeed()));
  std::printf("%-14s %6s %8s %8s %8s %8s %9s %6s\n", "program", "pool",
              "regdead", "+allbit", "+flip", "pruned", "prune%", "match");

  int strictly_finer = 0;
  std::uint64_t suite_reg = 0, suite_bit = 0, suite_pool = 0;
  for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
    const fi::TargetProgram& program = *entry.program;
    const staticanalysis::StaticSiteAnalysis analysis =
        staticanalysis::StaticSiteAnalysis::ForProgram(program, sim::DeviceProps{});
    const fi::CampaignRunner runner(program);

    fi::TransientCampaignConfig config;
    config.seed = bench::BenchSeed();
    config.num_injections = injections;
    const fi::TransientCampaignResult baseline = runner.RunTransientCampaign(config);

    // Judge the identical draw pool the campaign executes.
    std::uint64_t reg_dead = 0, all_bits = 0, flip_dead = 0;
    const std::vector<fi::TransientDraw> pool = fi::PreviewTransientFaults(
        baseline.profile, config, program.name());
    for (const fi::TransientDraw& draw : pool) {
      if (!draw.params.has_value()) continue;
      const fi::StaticSiteVerdict verdict =
          analysis.Evaluate(baseline.profile, *draw.params);
      if (!verdict.resolved) continue;
      if (verdict.register_dead) {
        ++reg_dead;
      } else if (verdict.statically_dead) {
        ++all_bits;  // dead only under the bit lattice
      } else if (verdict.flip_dead) {
        ++flip_dead;  // live register, but this draw's mask hits dead bits
      }
    }

    config.static_mode = fi::StaticSiteMode::kPrune;
    config.static_oracle = &analysis;
    const fi::TransientCampaignResult pruned = runner.RunTransientCampaign(config);
    const bool match = pruned.counts.masked == baseline.counts.masked &&
                       pruned.counts.sdc == baseline.counts.sdc &&
                       pruned.counts.due == baseline.counts.due &&
                       pruned.counts.potential_due == baseline.counts.potential_due;

    const std::uint64_t bit_pruned = reg_dead + all_bits + flip_dead;
    if (bit_pruned > reg_dead) ++strictly_finer;
    suite_reg += reg_dead;
    suite_bit += bit_pruned;
    suite_pool += pool.size();

    std::printf("%-14s %6zu %8llu %8llu %8llu %8llu %8.1f%% %6s\n",
                program.name().c_str(), pool.size(),
                static_cast<unsigned long long>(reg_dead),
                static_cast<unsigned long long>(all_bits),
                static_cast<unsigned long long>(flip_dead),
                static_cast<unsigned long long>(pruned.statically_pruned),
                bench::Pct(pruned.statically_pruned, pool.size()),
                match ? "yes" : "NO");
  }

  std::printf("\n%d of 15 programs prune strictly more flips than the "
              "register-level oracle\n", strictly_finer);
  std::printf("suite: register-level prunes %llu of %llu draws (%.1f%%), "
              "bit-level %llu (%.1f%%)\n",
              static_cast<unsigned long long>(suite_reg),
              static_cast<unsigned long long>(suite_pool),
              bench::Pct(suite_reg, suite_pool),
              static_cast<unsigned long long>(suite_bit),
              bench::Pct(suite_bit, suite_pool));
  std::printf("\nregdead = whole target absent from register live-out; +allbit =\n"
              "additionally proven dead bit-by-bit; +flip = live register whose\n"
              "drawn flip mask touches only dead bits.  pruned = runs the\n"
              "--static-prune campaign actually skipped; match = pruned outcome\n"
              "counts identical to the unpruned baseline.\n");
  return 0;
}
