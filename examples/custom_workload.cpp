// Example: bringing your own application under NVBitFI.
//
// Shows the three integration points a user implements:
//   1. a TargetProgram that runs the (unmodified) application against a
//      Context — here a little image-blur pipeline written in the SASS-like
//      dialect, with kernels both hand-written and template-generated;
//   2. a program-specific SDC checking script (tolerance-aware), as §IV-A
//      requires ("SDC checking scripts must always be provided by the user");
//   3. campaign configuration: instruction group, bit-flip models, watchdog.
//
// Usage:  ./build/examples/custom_workload
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "common/strings.h"
#include "core/campaign.h"
#include "workloads/common.h"

using namespace nvbitfi;  // NOLINT: example brevity

namespace {

constexpr std::uint32_t kWidth = 256;
constexpr int kBlurPasses = 8;

// A 1-D "image" blur: two template stencil passes plus a hand-written
// brightness histogram kernel using shared-memory reduction and atomics.
class BlurProgram final : public fi::TargetProgram {
 public:
  BlurProgram()
      : checker_(workloads::ToleranceChecker::Element::kFloat, 5e-3, 1e-6) {
    source_ = workloads::StencilKernel("blur_x", 0.20f, kWidth - 1);
    source_ += workloads::StencilKernel("blur_wide", 0.10f, kWidth - 1);
    // Histogram: one atomic increment per pixel into 8 brightness bins.
    source_ +=
        ".kernel brightness_hist regs=20\n"
        "  S2R R0, SR_CTAID.X ;\n"
        "  S2R R1, SR_TID.X ;\n"
        "  IMAD R0, R0, c[0][0x0], R1 ;\n"
        "  MOV R3, c[0][0x170] ;\n"
        "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
        "  @P0 EXIT ;\n"
        "  LDC.64 R4, c[0][0x160] ;\n"
        "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
        "  LDG.E.32 R8, [R6] ;\n"
        "  FMUL R9, |R8|, 0x40e00000 ;\n"  // |v| * 7.0
        "  F2I R10, R9 ;\n"
        "  MOV R11, 0x7 ;\n"
        "  IMNMX R10, R10, R11, PT ;\n"
        "  LDC.64 R4, c[0][0x168] ;\n"
        "  IMAD.WIDE R6, R10, 0x4, R4 ;\n"
        "  MOV32I R12, 0x1 ;\n"
        "  RED.ADD [R6], R12 ;\n"
        "  EXIT ;\n"
        ".endkernel\n";
  }

  std::string name() const override { return "blur_demo"; }
  std::string description() const override { return "custom image-blur pipeline"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }

    std::vector<float> image(kWidth);
    for (std::uint32_t i = 0; i < kWidth; ++i) {
      image[i] = 0.5f + 0.5f * static_cast<float>(std::sin(0.1 * i));
    }
    sim::DevPtr a = workloads::AllocAndUpload(ctx, image);
    sim::DevPtr b = workloads::AllocAndUpload(ctx, image);
    const std::vector<std::uint32_t> zero_bins(8, 0);
    sim::DevPtr hist = workloads::AllocAndUploadU32(ctx, zero_bins);

    const sim::Dim3 grid{kWidth / 64, 1, 1};
    const sim::Dim3 block{64, 1, 1};
    for (int pass = 0; pass < kBlurPasses; ++pass) {
      sim::Function* fn = ctx.GetFunction(pass % 2 == 0 ? "blur_x" : "blur_wide");
      const std::uint64_t params[] = {a, b, kWidth};
      ctx.LaunchKernel(fn, grid, block, params);
      std::swap(a, b);
    }
    {
      const std::uint64_t params[] = {a, hist, kWidth};
      ctx.LaunchKernel(ctx.GetFunction("brightness_hist"), grid, block, params);
    }

    const std::vector<float> result = workloads::Download(ctx, a, kWidth);
    const std::vector<std::uint32_t> bins = workloads::DownloadU32(ctx, hist, 8);
    double mean = 0.0;
    std::uint64_t histogram_total = 0;
    for (const float v : result) mean += v;
    mean /= kWidth;
    for (const std::uint32_t c : bins) histogram_total += c;

    // Application-specific consistency check: every pixel must be binned.
    if (histogram_total != kWidth) art.app_check_failed = true;

    art.stdout_text = Format("blur_demo: mean brightness %.3f, histogram total %llu\n",
                             mean, static_cast<unsigned long long>(histogram_total));
    workloads::AppendToOutput(&art, std::span<const float>(result));
    std::vector<float> bins_f(bins.begin(), bins.end());
    workloads::AppendToOutput(&art, std::span<const float>(bins_f));
    return art;
  }

 private:
  std::string source_;
  workloads::ToleranceChecker checker_;
};

}  // namespace

int main() {
  const BlurProgram program;
  const fi::CampaignRunner runner(program);

  std::printf("=== custom workload under NVBitFI ===\n\n");
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  std::printf("golden: %s", golden.stdout_text.c_str());
  std::printf("        %llu static kernels, %llu dynamic kernels\n\n",
              static_cast<unsigned long long>(golden.static_kernels),
              static_cast<unsigned long long>(golden.dynamic_kernels));

  // A small campaign per instruction group, showing group-targeted injection.
  for (const fi::ArchStateId group :
       {fi::ArchStateId::kGFp32, fi::ArchStateId::kGLd, fi::ArchStateId::kGGp}) {
    fi::TransientCampaignConfig config;
    config.num_injections = 20;
    config.group = group;
    config.seed = 11;
    const fi::TransientCampaignResult result =
        fi::CampaignRunner(program).RunTransientCampaign(config);
    std::printf("group %-8s: SDC %5.1f%%  DUE %5.1f%%  Masked %5.1f%%\n",
                std::string(fi::ArchStateIdName(group)).c_str(), result.counts.SdcPct(),
                result.counts.DuePct(), result.counts.MaskedPct());
  }
  return 0;
}
