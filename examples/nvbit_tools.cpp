// Example: the NVBit layer as a general instrumentation framework.
//
// NVBitFI is one NVBit tool among many; this example attaches the classic
// NVBit reference tools (instruction counter, opcode histogram, memory
// tracer) to an unmodified workload — no source changes, no recompilation —
// and prints what they observe.
//
// Usage:  ./build/examples/nvbit_tools [program]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/campaign.h"
#include "nvbit/tools.h"
#include "workloads/workloads.h"

using namespace nvbitfi;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "314.omriq";
  const fi::TargetProgram* program = workloads::FindWorkload(name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program '%s'\n", name);
    return 1;
  }
  const fi::CampaignRunner runner(*program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});

  std::printf("=== NVBit reference tools on %s ===\n\n", name);

  // instr_count: per-launch dynamic instruction counts.
  nvbit::InstrCountTool counter;
  const fi::RunArtifacts counted = runner.Execute(&counter, sim::DeviceProps{}, 0);
  std::printf("instr_count: %zu launches, %llu thread instructions "
              "(instrumentation overhead %.1fx)\n",
              counter.launches().size(),
              static_cast<unsigned long long>(counter.TotalThreadInstructions()),
              static_cast<double>(counted.cycles) / static_cast<double>(golden.cycles));
  for (std::size_t i = 0; i < counter.launches().size() && i < 5; ++i) {
    const auto& launch = counter.launches()[i];
    std::printf("  %s@%llu: %llu executed, %llu predicated off\n",
                launch.kernel_name.c_str(),
                static_cast<unsigned long long>(launch.launch_ordinal),
                static_cast<unsigned long long>(launch.thread_instructions),
                static_cast<unsigned long long>(launch.predicated_off));
  }

  // opcode_hist: what the program actually executes.
  nvbit::OpcodeHistogramTool histogram;
  runner.Execute(&histogram, sim::DeviceProps{}, 0);
  std::printf("\nopcode_hist (top 10):\n");
  for (const auto& [count, opcode] : histogram.Top(10)) {
    std::printf("  %-10s %10llu\n", std::string(sim::OpcodeName(opcode)).c_str(),
                static_cast<unsigned long long>(count));
  }

  // mem_trace: global-memory access stream (summarised).
  nvbit::MemTraceTool tracer;
  runner.Execute(&tracer, sim::DeviceProps{}, 0);
  std::uint64_t loads = 0, stores = 0, bytes = 0;
  std::map<std::string, std::uint64_t> per_kernel;
  for (const auto& access : tracer.accesses()) {
    (access.is_store ? stores : loads) += 1;
    bytes += static_cast<std::uint64_t>(access.bytes);
    ++per_kernel[access.kernel_name];
  }
  std::printf("\nmem_trace: %llu loads, %llu stores, %llu bytes touched\n",
              static_cast<unsigned long long>(loads),
              static_cast<unsigned long long>(stores),
              static_cast<unsigned long long>(bytes));
  for (const auto& [kernel, count] : per_kernel) {
    std::printf("  %-20s %10llu accesses\n", kernel.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (!tracer.accesses().empty()) {
    const auto& first = tracer.accesses().front();
    std::printf("  first access: %s lane %d %s 0x%llx (%d bytes)\n",
                first.kernel_name.c_str(), first.lane_id,
                first.is_store ? "store" : "load",
                static_cast<unsigned long long>(first.address), first.bytes);
  }
  return 0;
}
