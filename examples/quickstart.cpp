// Quickstart: the four steps of Figure 1 on a small SAXPY program.
//
//   1. profile the target program (dynamic instruction counts per opcode);
//   2. select a random injection site from the profile;
//   3. run with the transient injector attached (only the target dynamic
//      kernel instance is instrumented);
//   4. compare against the golden output and classify the outcome.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/campaign.h"
#include "core/profile.h"
#include "core/target_program.h"
#include "workloads/common.h"

namespace {

using namespace nvbitfi;  // NOLINT: example brevity

// A tiny self-contained target program: y = a*x + y over 256 elements,
// launched 4 times.
class SaxpyProgram final : public fi::TargetProgram {
 public:
  SaxpyProgram() : source_(workloads::AxpyKernel("saxpy", 1.5f)) {}

  std::string name() const override { return "saxpy_demo"; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* saxpy = ctx.GetFunction("saxpy");

    constexpr std::uint32_t kN = 256;
    std::vector<float> x(kN), y(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      x[i] = 0.01f * static_cast<float>(i);
      y[i] = 1.0f;
    }
    const sim::DevPtr d_x = workloads::AllocAndUpload(ctx, x);
    const sim::DevPtr d_y = workloads::AllocAndUpload(ctx, y);

    for (int round = 0; round < 4; ++round) {
      const std::uint64_t params[] = {d_x, d_y, kN};
      ctx.LaunchKernel(saxpy, sim::Dim3{4, 1, 1}, sim::Dim3{64, 1, 1}, params);
    }

    const std::vector<float> result = workloads::Download(ctx, d_y, kN);
    double checksum = 0.0;
    for (const float v : result) checksum += v;
    art.stdout_text = Format("saxpy checksum %.6f\n", checksum);
    workloads::AppendToOutput(&art, std::span<const float>(result));
    return art;
  }

 private:
  std::string source_;
};

}  // namespace

int main() {
  const SaxpyProgram program;
  const fi::CampaignRunner runner(program);
  const sim::DeviceProps device;

  // Step 0+1: golden run and profile.
  const fi::RunArtifacts golden = runner.RunGolden(device);
  std::printf("golden: %s", golden.stdout_text.c_str());
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kExact, device, nullptr);
  std::printf("profile: %zu dynamic kernels, %llu dynamic instructions\n",
              profile.DynamicKernelCount(),
              static_cast<unsigned long long>(profile.TotalInstructions()));

  // Step 2: select a site (uniform over instructions that write a GPR).
  Rng rng(42);
  const auto params = fi::SelectTransientFault(profile, fi::ArchStateId::kGGp,
                                               fi::BitFlipModel::kFlipSingleBit, rng);
  if (!params) {
    std::printf("no eligible injection site\n");
    return 1;
  }
  std::printf("site: kernel=%s instance=%llu instruction=%llu\n",
              params->kernel_name.c_str(),
              static_cast<unsigned long long>(params->kernel_count),
              static_cast<unsigned long long>(params->instruction_count));

  // Step 3: run with the injector attached.
  fi::TransientInjectorTool injector(*params);
  const fi::RunArtifacts faulty =
      runner.Execute(&injector, device, /*watchdog=*/10 * golden.thread_instructions);
  std::printf("faulty: %s", faulty.stdout_text.c_str());
  std::printf("injection %s: opcode %s, register R%d, mask 0x%llx\n",
              injector.record().activated ? "activated" : "NOT activated",
              std::string(sim::OpcodeName(injector.record().opcode)).c_str(),
              injector.record().target_register,
              static_cast<unsigned long long>(injector.record().mask));

  // Step 4: classify.
  const fi::Classification outcome =
      fi::Classify(golden, faulty, program.sdc_checker());
  std::printf("outcome: %s (%s)%s\n", std::string(fi::OutcomeName(outcome.outcome)).c_str(),
              std::string(fi::SymptomName(outcome.symptom)).c_str(),
              outcome.potential_due ? " [potential DUE]" : "");
  return 0;
}
