// Example: a full transient-fault campaign on one SpecACCEL proxy program,
// with a detailed per-injection report — the programmatic equivalent of the
// NVBitFI convenience scripts.
//
// Usage:  ./build/examples/transient_campaign [program] [injections] [seed]
//         ./build/examples/transient_campaign 304.olbm 50 7
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/strings.h"
#include "core/campaign.h"
#include "workloads/workloads.h"

using namespace nvbitfi;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* program_name = argc > 1 ? argv[1] : "303.ostencil";
  const int injections = argc > 2 ? std::atoi(argv[2]) : 30;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 1;

  const fi::TargetProgram* program = workloads::FindWorkload(program_name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program '%s'; available:\n", program_name);
    for (const workloads::WorkloadEntry& entry : workloads::AllWorkloads()) {
      std::fprintf(stderr, "  %s — %s\n", entry.program->name().c_str(),
                   entry.description);
    }
    return 1;
  }

  fi::CampaignRunner runner(*program);
  fi::TransientCampaignConfig config;
  config.seed = seed;
  config.num_injections = injections;
  config.group = fi::ArchStateId::kGGp;
  config.randomize_flip_model = true;
  config.profiling = fi::ProfilerTool::Mode::kExact;

  std::printf("=== transient campaign: %s, %d injections, seed %llu ===\n\n",
              program_name, injections, static_cast<unsigned long long>(seed));
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

  std::printf("golden: %llu dynamic kernels, %llu thread instructions, %llu cycles\n",
              static_cast<unsigned long long>(result.golden.dynamic_kernels),
              static_cast<unsigned long long>(result.golden.thread_instructions),
              static_cast<unsigned long long>(result.golden.cycles));
  std::printf("profile: %llu eligible instructions in group %s "
              "(exact profiling overhead %.1fx)\n\n",
              static_cast<unsigned long long>(result.profile.GroupTotal(config.group)),
              std::string(fi::ArchStateIdName(config.group)).c_str(),
              result.ProfilingOverhead());

  std::printf("%4s  %-28s %6s %-16s %-18s %-8s %s\n", "#", "site", "opcode",
              "flip model", "corruption", "outcome", "notes");
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    const fi::InjectionRun& run = result.injections[i];
    std::string site = run.params.kernel_name + "@" +
                       std::to_string(run.params.kernel_count) + "/" +
                       std::to_string(run.params.instruction_count);
    std::string corruption = "-";
    if (run.record.activated && run.record.corrupted) {
      corruption = (run.record.pred_target ? "P" : "R") +
                   std::to_string(run.record.target_register) + "^" +
                   Format("0x%llx", static_cast<unsigned long long>(run.record.mask));
    }
    std::printf("%4zu  %-28s %6s %-16s %-18s %-8s %s\n", i, site.c_str(),
                std::string(sim::OpcodeName(run.record.opcode)).c_str(),
                std::string(fi::BitFlipModelName(run.params.bit_flip_model)).c_str(),
                corruption.c_str(),
                std::string(fi::OutcomeName(run.classification.outcome)).c_str(),
                run.classification.potential_due ? "[potential DUE]" : "");
  }

  std::printf("\n=== summary ===\n");
  std::printf("SDC    %5.1f%%  (%llu)\n", result.counts.SdcPct(),
              static_cast<unsigned long long>(result.counts.sdc));
  std::printf("DUE    %5.1f%%  (%llu)\n", result.counts.DuePct(),
              static_cast<unsigned long long>(result.counts.due));
  std::printf("Masked %5.1f%%  (%llu)\n", result.counts.MaskedPct(),
              static_cast<unsigned long long>(result.counts.masked));
  std::printf("potential DUEs: %llu\n",
              static_cast<unsigned long long>(result.counts.potential_due));
  std::printf("median injection overhead: %.2fx; total campaign: %.3f Gcycles\n",
              result.MedianInjectionOverhead(), result.TotalCampaignCycles() * 1e-9);

  // Symptom breakdown.
  std::map<std::string, int> symptoms;
  for (const fi::InjectionRun& run : result.injections) {
    ++symptoms[std::string(fi::SymptomName(run.classification.symptom))];
  }
  std::printf("\nsymptoms:\n");
  for (const auto& [name, count] : symptoms) {
    std::printf("  %3d  %s\n", count, name.c_str());
  }
  return 0;
}
