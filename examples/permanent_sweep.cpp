// Example: a permanent-fault sweep over every opcode a program executes,
// with the Fig. 3 weighting by dynamic-instruction share.
//
// Usage:  ./build/examples/permanent_sweep [program] [sm] [lane]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"
#include "workloads/workloads.h"

using namespace nvbitfi;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* program_name = argc > 1 ? argv[1] : "352.ep";
  const int sm = argc > 2 ? std::atoi(argv[2]) : 0;

  const fi::TargetProgram* program = workloads::FindWorkload(program_name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program '%s'\n", program_name);
    return 1;
  }

  fi::CampaignRunner runner(*program);
  std::printf("=== permanent-fault sweep: %s (SM %d) ===\n\n", program_name, sm);

  // The profile supplies the executed-opcode set and the Fig. 3 weights.
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kApproximate, sim::DeviceProps{},
                         nullptr);
  std::printf("profile: %zu of %d opcodes executed -> %zu permanent experiments\n\n",
              profile.ExecutedOpcodes().size(), sim::kOpcodeCount,
              profile.ExecutedOpcodes().size());

  fi::PermanentCampaignConfig config;
  config.sm_id = sm;
  const fi::PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);

  std::printf("%-10s %6s %10s %12s %9s  %s\n", "opcode", "lane", "mask",
              "activations", "weight", "outcome");
  for (const fi::PermanentRun& run : result.runs) {
    std::printf("%-10s %6d 0x%08x %12llu %8.2f%%  %s%s\n",
                std::string(sim::OpcodeName(run.params.opcode())).c_str(),
                run.params.lane_id, run.params.bit_mask,
                static_cast<unsigned long long>(run.activations), 100.0 * run.weight,
                std::string(fi::OutcomeName(run.classification.outcome)).c_str(),
                run.classification.potential_due ? " [potential DUE]" : "");
  }

  const double total = result.weighted.total();
  std::printf("\nweighted outcomes (Fig. 3 style):\n");
  std::printf("  SDC    %5.1f%%\n", total > 0 ? 100.0 * result.weighted.sdc / total : 0.0);
  std::printf("  DUE    %5.1f%%\n", total > 0 ? 100.0 * result.weighted.due / total : 0.0);
  std::printf("  Masked %5.1f%%\n",
              total > 0 ? 100.0 * result.weighted.masked / total : 0.0);
  return 0;
}
